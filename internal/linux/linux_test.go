package linux

import (
	"testing"

	"embera/internal/sim"
	"embera/internal/smp"
)

func newSys() *System {
	k := sim.NewKernel()
	return NewSystem(smp.MustNew(k, smp.DefaultConfig()))
}

func TestGetTimeOfDayMicrosecondResolution(t *testing.T) {
	s := newSys()
	s.K.At(1234567, func() { // 1.234567 ms
		got := s.GetTimeOfDay()
		if got != 1234*sim.Microsecond {
			t.Errorf("GetTimeOfDay = %d ns, want 1234000", int64(got))
		}
	})
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateThreadDefaultStack(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	th, err := p.CreateThread("worker", ThreadAttr{Core: -1}, func(t *Thread) {})
	if err != nil {
		t.Fatal(err)
	}
	if th.StackSize() != DefaultStackSize {
		t.Errorf("stack = %d, want %d", th.StackSize(), DefaultStackSize)
	}
	if DefaultStackSize != 8392*1024 {
		t.Errorf("DefaultStackSize = %d, want the paper's 8392 kB", DefaultStackSize)
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateThreadAccountsStack(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	if _, err := p.CreateThread("w", ThreadAttr{Core: 0}, func(t *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if got := p.Mem.Tagged("stack:w"); got != DefaultStackSize {
		t.Errorf("accounted stack = %d", got)
	}
	node := s.M.NodeOf(0)
	if s.M.Node(node).MemUsed != DefaultStackSize {
		t.Errorf("node memory used = %d", s.M.Node(node).MemUsed)
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateThreadRejectsTinyStack(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	if _, err := p.CreateThread("w", ThreadAttr{StackSize: 1024, Core: 0}, func(t *Thread) {}); err == nil {
		t.Error("tiny stack accepted")
	}
}

func TestCreateThreadRejectsBadCore(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	if _, err := p.CreateThread("w", ThreadAttr{Core: 99}, func(t *Thread) {}); err == nil {
		t.Error("bad core accepted")
	}
}

func TestThreadLifecycleTimes(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	th, err := p.CreateThread("w", ThreadAttr{Core: 0}, func(t *Thread) {
		t.ComputeFor(500 * sim.Microsecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
	if !th.Done() {
		t.Fatal("thread not done after Run")
	}
	if th.StartedAt() != sim.Time(ThreadSpawnCost) {
		t.Errorf("started at %d, want %d", th.StartedAt(), ThreadSpawnCost)
	}
	if got := th.FinishedAt() - th.StartedAt(); got != sim.Time(500*sim.Microsecond) {
		t.Errorf("elapsed = %d", got)
	}
}

func TestComputeChargesCoreCycles(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	_, err := p.CreateThread("w", ThreadAttr{Core: 3}, func(t *Thread) {
		t.Compute(2_200_000) // 1 ms at 2.2 GHz
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.M.Core(3).Busy; got != sim.Millisecond {
		t.Errorf("core busy = %v, want 1ms", got)
	}
}

func TestCopyToChargesNUMACostAndCache(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	var elapsed sim.Duration
	_, err := p.CreateThread("w", ThreadAttr{Core: 0}, func(t *Thread) {
		start := t.SimProc.Now()
		t.CopyTo(7, 64*1024, 0x1000)
		elapsed = sim.Duration(t.SimProc.Now() - start)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
	want := s.M.CopyCost(0, 7, 64*1024)
	if elapsed != want {
		t.Errorf("copy elapsed = %v, want %v", elapsed, want)
	}
	_, misses := s.M.Core(0).Cache.Stats()
	if misses == 0 {
		t.Error("streaming copy produced no cache misses")
	}
}

func TestProcessBookkeeping(t *testing.T) {
	s := newSys()
	p1 := s.NewProcess("a")
	p2 := s.NewProcess("b")
	if p1.PID == p2.PID {
		t.Error("duplicate PIDs")
	}
	if len(s.Processes()) != 2 {
		t.Errorf("processes = %d", len(s.Processes()))
	}
	if _, err := p1.CreateThread("t1", ThreadAttr{Core: 0}, func(t *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if len(p1.Threads()) != 1 || len(p2.Threads()) != 0 {
		t.Error("thread lists wrong")
	}
	if p1.System() != s {
		t.Error("System() mismatch")
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemAccountTagging(t *testing.T) {
	a := NewMemAccount()
	a.Alloc("stack:x", 100)
	a.Alloc("iface:x:in", 50)
	a.Alloc("iface:x:obs", 25)
	if a.Total() != 175 {
		t.Errorf("total = %d", a.Total())
	}
	if a.Tagged("iface:x:in") != 50 {
		t.Errorf("tagged = %d", a.Tagged("iface:x:in"))
	}
	if a.TotalPrefix("iface:x:") != 75 {
		t.Errorf("prefix total = %d", a.TotalPrefix("iface:x:"))
	}
	a.Free("iface:x:obs", 25)
	if a.TotalPrefix("iface:x:") != 50 {
		t.Errorf("prefix total after free = %d", a.TotalPrefix("iface:x:"))
	}
	tags := a.Tags()
	if len(tags) != 2 || tags[0] != "iface:x:in" || tags[1] != "stack:x" {
		t.Errorf("tags = %v", tags)
	}
}

func TestMemAccountOverfreePanics(t *testing.T) {
	a := NewMemAccount()
	a.Alloc("x", 10)
	defer func() {
		if recover() == nil {
			t.Error("over-free did not panic")
		}
	}()
	a.Free("x", 11)
}

func TestMemAccountNegativeAllocPanics(t *testing.T) {
	a := NewMemAccount()
	defer func() {
		if recover() == nil {
			t.Error("negative alloc did not panic")
		}
	}()
	a.Alloc("x", -1)
}

func TestThreadsShareCoreSerialized(t *testing.T) {
	// Two threads pinned to one core must interleave, not overlap: total
	// wall time equals the sum of their compute intervals.
	s := newSys()
	p := s.NewProcess("app")
	var done []sim.Time
	for i := 0; i < 2; i++ {
		if _, err := p.CreateThread("w", ThreadAttr{Core: 0}, func(t *Thread) {
			t.ComputeFor(10 * sim.Millisecond)
			done = append(done, t.SimProc.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
	base := sim.Time(ThreadSpawnCost)
	if done[0] != base+sim.Time(10*sim.Millisecond) ||
		done[1] != base+sim.Time(20*sim.Millisecond) {
		t.Errorf("completions = %v, want serialized 10ms/20ms after spawn", done)
	}
}

func TestThreadsOnDistinctCoresOverlap(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	var done []sim.Time
	for i := 0; i < 2; i++ {
		core := i
		if _, err := p.CreateThread("w", ThreadAttr{Core: core}, func(t *Thread) {
			t.ComputeFor(10 * sim.Millisecond)
			done = append(done, t.SimProc.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
	base := sim.Time(ThreadSpawnCost) + sim.Time(10*sim.Millisecond)
	if done[0] != base || done[1] != base {
		t.Errorf("completions = %v, want both at %d (parallel cores)", done, base)
	}
}

func TestKilledThreadRecordsExit(t *testing.T) {
	s := newSys()
	p := s.NewProcess("app")
	var exits int
	s.KHook = func(ev KernelEvent) {
		if ev.Kind == "thread_exit" {
			exits++
		}
	}
	th, err := p.CreateThread("spin", ThreadAttr{Core: 0}, func(t *Thread) {
		for {
			t.ComputeFor(sim.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.K.At(10*sim.Millisecond, func() { s.K.Kill(th.SimProc) })
	if err := s.K.Run(); err != nil {
		t.Fatal(err)
	}
	if !th.Done() {
		t.Error("killed thread not marked done")
	}
	if exits != 1 {
		t.Errorf("thread_exit events = %d, want 1", exits)
	}
}
