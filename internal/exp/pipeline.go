package exp

import (
	"fmt"
	"strings"

	"embera/internal/platform"
)

// Pipeline experiment (P1): the same synthetic pipeline workload on every
// registered platform — the cross-platform portability demonstration the
// paper's component model promises. One row per platform; the checksums
// must agree, the makespans show the platforms' relative speed.

// P1Row is one platform's pipeline run.
type P1Row struct {
	Platform   string
	MakespanUS int64
	Units      int
	Checksum   uint64
}

// PipelineCompare runs the default pipeline workload at the given message
// count on every registered platform.
func PipelineCompare(messages int) ([]P1Row, error) {
	var rows []P1Row
	for _, name := range platform.Names() {
		run, err := RunNamed(name, "pipeline", Options{
			Options: platform.Options{Scale: messages},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, P1Row{
			Platform:   name,
			MakespanUS: run.MakespanUS,
			Units:      run.Instance.Units(),
			Checksum:   run.Instance.Checksum(),
		})
	}
	for _, r := range rows[1:] {
		if r.Checksum != rows[0].Checksum {
			return nil, fmt.Errorf("exp: pipeline checksum diverges across platforms: %x vs %x (%s)",
				r.Checksum, rows[0].Checksum, r.Platform)
		}
	}
	return rows, nil
}

// FormatP1 renders the comparison.
func FormatP1(rows []P1Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "P1: pipeline workload across every registered platform")
	fmt.Fprintf(&b, "%-12s %14s %10s %18s\n", "Platform", "makespan (µs)", "messages", "checksum")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14d %10d %018x\n", r.Platform, r.MakespanUS, r.Units, r.Checksum)
	}
	return b.String()
}
