// Differential conformance: the record-and-compare battery that runs one
// generated workload seed (internal/fuzzwl's "rand:<seed>" family) across
// every registered platform and cross-checks everything the observation
// stack reports. It is the strongest pressure the repository puts on the
// paper's central claim — that component-level observation stays faithful
// across heterogeneous platforms — because none of the workloads it runs
// were ever hand-written:
//
//   - result checksums and unit counts must be identical on every platform
//     (portability of application semantics);
//   - timing fingerprints must be bit-identical between two runs of the
//     same cell on Deterministic (virtual-time) platforms;
//   - flow conservation must hold per interface: messages sent into every
//     inbox equal messages received plus the in-flight depth the final
//     report shows at teardown — and both must match the closed-form model
//     of the generating Spec;
//   - on process-sharded machines (the cluster platform) the same law is
//     accounted per shard: the sends into an inbox are summed per source
//     process so a cross-process mismatch names the interface and the
//     shards on both ends, and every cross-shard edge must show exactly
//     one wire frame per producer send op;
//   - the streaming monitor's window aggregates must agree with the final
//     pull-model observer report (cumulative counters never exceed the
//     final ones, merged deltas reproduce the cumulative totals, and no
//     sample is lost unaccounted);
//   - on the simulated-Linux platform the kernel trace must correlate
//     completely with the EMBera send trace: no kernel copy without an
//     application-level explanation, and no send without its kernel copy.
//
// Every failure carries the one-line repro command
// ("embera-bench -exp FUZZ -seed <n>") so a nightly soak finding reduces to
// a single deterministic invocation.
package conformance

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"embera/internal/core"
	"embera/internal/correlate"
	"embera/internal/ctl"
	"embera/internal/exp"
	"embera/internal/fuzzwl"
	"embera/internal/kptrace"
	"embera/internal/monitor"
	"embera/internal/platform"
	"embera/internal/smpbind"
	"embera/internal/trace"
)

// migrationPoints is how many same-target migrate/reconnect points the
// fuzzed migration scheduler injects into each migrated differential cell.
// Delays land in the low milliseconds, so several points hit while the
// generated workload is still flowing.
const migrationPoints = 6

// ctlReproCommand is the one-line reproduction command for a failing
// migrated seed — the CTL twin of fuzzwl.ReproCommand.
func ctlReproCommand(seed int64) string {
	return fmt.Sprintf("embera-bench -exp CTL -seed %d", seed)
}

// specProvider is implemented by fuzzwl instances: the effective
// (override-adjusted) topology the run was built from.
type specProvider interface{ Spec() *fuzzwl.Spec }

// sharder is the structural seam a machine exposes when it partitioned the
// assembly across OS processes (the cluster platform): the placement
// function, and the coordinator's per-edge relay counters for cross-shard
// connections. When a run's machine implements it, flow conservation is
// additionally accounted per shard — a send==receive mismatch names the
// offending interface and the shards on both ends — and every cross-shard
// edge's wire-frame count must equal the producer's send ops.
type sharder interface {
	ShardOf(name string) int
	WireFrames(from, iface string) (uint64, bool)
}

// diffMonitorConfig is the streaming-observation attachment every
// differential run carries: application-level sampling fine enough to land
// samples inside small virtual makespans, plus a coarser OS-level sampler
// so both facets of the aggregation pipeline are exercised.
func diffMonitorConfig() *monitor.Config {
	return &monitor.Config{
		Levels: []monitor.LevelPeriod{
			{Level: core.LevelApplication, PeriodUS: 200},
			{Level: core.LevelOS, PeriodUS: 1000},
		},
		WindowUS: 2000,
	}
}

// traceCapacity bounds the per-run event recorder. Generated topologies
// stay in the low thousands of messages; the engine verifies nothing was
// dropped before correlating, so an undersized buffer is an explicit
// failure rather than a silent orphan source.
const traceCapacity = 1 << 17

// Differential runs the full differential battery for one seed across
// every registered platform. Any returned error ends with the single-line
// repro command for the failing seed.
func Differential(seed int64) error {
	return DifferentialOn(nil, seed)
}

// DifferentialOn is Differential restricted to the named platforms (nil =
// every registered platform); with a single platform the cross-platform
// comparison is vacuous but the per-run battery still applies, which is
// what a platform-targeted repro wants.
func DifferentialOn(platformNames []string, seed int64) error {
	if platformNames == nil {
		platformNames = platform.Names()
	}
	if err := differential(platformNames, seed, false); err != nil {
		return fmt.Errorf("%w\nrepro: %s", err, fuzzwl.ReproCommand(seed))
	}
	return nil
}

// DifferentialMigrated runs the full differential battery for one seed
// with the fuzzed migration scheduler attached: a deterministic schedule of
// same-target migrate/reconnect points (derived from the workload name, so
// deterministic-platform reruns inject identically) fires while the cell is
// flowing. Every invariant the plain battery asserts — equal checksums,
// bit-identical rerun fingerprints, per-interface flow conservation,
// monitor agreement — must survive the schedule, and every point must
// apply cleanly or legally race termination.
func DifferentialMigrated(seed int64) error {
	return DifferentialMigratedOn(nil, seed)
}

// DifferentialMigratedOn is DifferentialMigrated restricted to the named
// platforms (nil = every registered platform).
func DifferentialMigratedOn(platformNames []string, seed int64) error {
	if platformNames == nil {
		platformNames = platform.Names()
	}
	if err := differential(platformNames, seed, true); err != nil {
		return fmt.Errorf("%w\nrepro: %s", err, ctlReproCommand(seed))
	}
	return nil
}

func differential(platformNames []string, seed int64, migrate bool) error {
	type outcome struct {
		platform string
		checksum uint64
		units    int
	}
	var outcomes []outcome
	for _, pn := range platformNames {
		p, err := platform.Get(pn)
		if err != nil {
			return err
		}
		runs := 1
		if p.Deterministic() {
			runs = 2 // rerun to assert bit-identical timing fingerprints
		}
		var fingerprints []uint64
		var first *outcome
		for r := 0; r < runs; r++ {
			var rec *trace.Recorder
			var ktr *kptrace.Tracer
			var sched *ctl.ScheduleResult
			opts := exp.Options{
				Monitor: diffMonitorConfig(),
				Customize: func(a *core.App, obs *core.Observer) {
					// Kernel-copy correlation only exists on the
					// simulated-Linux platform, so both tracers — the
					// kernel-level baseline and the EMBera event recorder
					// it correlates against — attach only there; other
					// platforms skip the buffer and the per-event locking.
					if b, ok := a.Binding().(*smpbind.Binding); ok {
						rec = trace.NewRecorder(traceCapacity)
						a.SetEventSink(rec)
						ktr = kptrace.Attach(b.Sys, 0)
					}
					if migrate {
						// The schedule is a pure function of the workload
						// name, so a deterministic platform's rerun injects
						// the identical points and the fingerprint
						// comparison below stays meaningful. On the cluster
						// coordinator every component is external, the edge
						// list is empty and the cell runs as a control.
						sched = ctl.AttachMigrations(a, ctl.ScheduleFor(a, migrationPoints))
					}
				},
			}
			run, err := exp.RunNamed(pn, fuzzwl.Name(seed), opts)
			if err != nil {
				return fmt.Errorf("conformance: seed %d on %s: %w", seed, pn, err)
			}
			if sched != nil {
				if err := sched.Err(); err != nil {
					return fmt.Errorf("conformance: seed %d on %s: migration schedule: %w", seed, pn, err)
				}
			}
			if err := CheckRun(run); err != nil {
				return fmt.Errorf("conformance: seed %d on %s: %w", seed, pn, err)
			}
			if ktr != nil {
				if err := checkKernelCorrelation(ktr, rec); err != nil {
					return fmt.Errorf("conformance: seed %d on %s: %w", seed, pn, err)
				}
			}
			if runs > 1 {
				// Fingerprints are only ever compared between reruns, so
				// skip the full-report serialization on wall-clock
				// platforms where no rerun exists to compare against.
				fp, err := Fingerprint(run)
				if err != nil {
					return fmt.Errorf("conformance: seed %d on %s: %w", seed, pn, err)
				}
				fingerprints = append(fingerprints, fp)
			}
			o := outcome{platform: pn, checksum: run.Instance.Checksum(), units: run.Instance.Units()}
			if first == nil {
				first = &o
			} else if o.checksum != first.checksum || o.units != first.units {
				return fmt.Errorf("conformance: seed %d on %s: rerun results differ: %016x/%d vs %016x/%d",
					seed, pn, o.checksum, o.units, first.checksum, first.units)
			}
		}
		for i := 1; i < len(fingerprints); i++ {
			if fp := fingerprints[i]; fp != fingerprints[0] {
				return fmt.Errorf("conformance: seed %d on %s: nondeterministic timing fingerprints: %016x vs %016x",
					seed, pn, fp, fingerprints[0])
			}
		}
		outcomes = append(outcomes, *first)
	}
	for _, o := range outcomes[1:] {
		if o.checksum != outcomes[0].checksum || o.units != outcomes[0].units {
			return fmt.Errorf("conformance: seed %d: %s disagrees with %s: checksum %016x/%d units vs %016x/%d",
				seed, o.platform, outcomes[0].platform, o.checksum, o.units,
				outcomes[0].checksum, outcomes[0].units)
		}
	}
	return nil
}

// CheckRun verifies the per-run differential invariants on a completed
// generated-workload run: flow conservation against the generating Spec and
// monitor/observer agreement. It applies to any run whose Instance carries
// its Spec (fuzzwl runs); RunMatrix sweeps reuse it cell by cell.
func CheckRun(run *exp.Result) error {
	sp, ok := run.Instance.(specProvider)
	if !ok {
		return fmt.Errorf("conformance: run instance %T carries no topology spec", run.Instance)
	}
	sh, _ := run.Machine.(sharder)
	if err := checkFlowConservation(sp.Spec(), run.Reports, sh); err != nil {
		return err
	}
	return checkMonitorAgreement(run)
}

// checkFlowConservation asserts the per-interface accounting identity on
// the final reports: for every inbox, messages sent into it == messages
// received from it + the depth reported in-flight at teardown; and both
// sides match the closed-form Processed counts of the generating Spec.
//
// On sharded machines (sh non-nil) the identity is additionally accounted
// per process: the sends into every inbox are summed per source shard so a
// mismatch names the interface and the shard each half lives on, and every
// cross-shard edge must show exactly one wire frame per producer send op —
// the cross-process refinement of the same conservation law.
func checkFlowConservation(spec *fuzzwl.Spec, reports map[string]core.ObsReport, sh sharder) error {
	processed := spec.Processed()
	for i := range spec.Nodes {
		n := &spec.Nodes[i]
		rep, ok := reports[n.Name]
		if !ok {
			return fmt.Errorf("flow: no report for %s", n.Name)
		}
		if rep.Middleware == nil || rep.App == nil {
			return fmt.Errorf("flow: %s report misses middleware/application sections", n.Name)
		}
		// Every handled message leaves on every output, exactly once per
		// out-interface.
		wantSend := uint64(processed[i]) * uint64(len(n.Outs))
		if rep.App.SendOps != wantSend {
			return fmt.Errorf("flow: %s sent %d ops, model says %d", n.Name, rep.App.SendOps, wantSend)
		}
		for oi, dst := range n.Outs {
			iface := fmt.Sprintf("out%d", oi)
			ops := rep.Middleware.Send[iface].Ops
			if ops != uint64(processed[i]) {
				return fmt.Errorf("flow: %s.%s carried %d sends, model says %d",
					n.Name, iface, ops, processed[i])
			}
			if sh == nil {
				continue
			}
			// Cross-shard edges carry one wire frame per send op, counted
			// by the coordinator relay; same-shard edges report !remote.
			if frames, remote := sh.WireFrames(n.Name, iface); remote && frames != ops {
				return fmt.Errorf("flow: %s.%s (shard %d -> %s on shard %d): %d wire frames != %d send ops",
					n.Name, iface, sh.ShardOf(n.Name),
					spec.Nodes[dst].Name, sh.ShardOf(spec.Nodes[dst].Name), frames, ops)
			}
		}
		if len(n.Ins) == 0 {
			continue
		}
		// Conservation on the inbox: sends in == receives out + in-flight.
		// The per-shard breakdown survives to the error message on sharded
		// runs, so a cross-process mismatch names the producing shards.
		var sentInto uint64
		perShard := map[int]uint64{}
		for _, src := range n.Ins {
			s := &spec.Nodes[src]
			for oi, dst := range s.Outs {
				if dst == i {
					ops := reports[s.Name].Middleware.Send[fmt.Sprintf("out%d", oi)].Ops
					sentInto += ops
					if sh != nil {
						perShard[sh.ShardOf(s.Name)] += ops
					}
				}
			}
		}
		depth := -1
		for _, ifc := range rep.App.Interfaces {
			if ifc.Name == "in" && ifc.Type == "provided" {
				depth = ifc.Depth
			}
		}
		if depth < 0 {
			return fmt.Errorf("flow: %s listing misses the provided inbox", n.Name)
		}
		recv := rep.Middleware.Recv["in"].Ops
		if sentInto != recv+uint64(depth) {
			if sh != nil {
				return fmt.Errorf("flow: %s inbox (shard %d): %d sent in != %d received + %d in flight; sends by source shard: %s",
					n.Name, sh.ShardOf(n.Name), sentInto, recv, depth, formatShardOps(perShard))
			}
			return fmt.Errorf("flow: %s inbox: %d sent in != %d received + %d in flight",
				n.Name, sentInto, recv, depth)
		}
		if recv != uint64(processed[i]) {
			return fmt.Errorf("flow: %s received %d, model says %d", n.Name, recv, processed[i])
		}
	}
	return nil
}

// formatShardOps renders a per-shard op-count map in shard order, for the
// sharded flow-conservation failure message.
func formatShardOps(perShard map[int]uint64) string {
	shards := make([]int, 0, len(perShard))
	for s := range perShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var b strings.Builder
	for i, s := range shards {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "shard %d: %d", s, perShard[s])
	}
	return b.String()
}

// checkMonitorAgreement asserts that the streaming monitor's windowed view
// of the run is consistent with the final pull-model observer report: the
// monitor is a sampled prefix of the truth, so its cumulative counters can
// never exceed the final ones, its merged window deltas must reproduce its
// cumulative totals, and every accepted sample must be accounted for in a
// window.
func checkMonitorAgreement(run *exp.Result) error {
	mon := run.Monitor
	if mon == nil {
		return fmt.Errorf("monitor: differential run carried no monitor")
	}
	var windowed int
	for _, w := range mon.Windows() {
		windowed += w.Samples
	}
	if accepted := mon.Samples(); uint64(windowed) != accepted {
		return fmt.Errorf("monitor: %d samples accepted but %d aggregated into windows",
			accepted, windowed)
	}
	for _, t := range mon.Totals() {
		rep, ok := run.Reports[t.Component]
		if !ok {
			return fmt.Errorf("monitor: sampled unknown component %q", t.Component)
		}
		if t.SendOps > rep.App.SendOps || t.RecvOps > rep.App.RecvOps {
			return fmt.Errorf("monitor: %s sampled counters %d/%d exceed final report %d/%d",
				t.Component, t.SendOps, t.RecvOps, rep.App.SendOps, rep.App.RecvOps)
		}
		if t.DeltaSendOps != t.SendOps || t.DeltaRecvOps != t.RecvOps {
			return fmt.Errorf("monitor: %s window deltas %d/%d do not reproduce cumulative totals %d/%d",
				t.Component, t.DeltaSendOps, t.DeltaRecvOps, t.SendOps, t.RecvOps)
		}
	}
	return nil
}

// checkKernelCorrelation joins the kernel-level copy trace with the EMBera
// send trace of the same execution and requires a complete two-way mapping:
// every kernel copy explained by an application send and vice versa.
func checkKernelCorrelation(ktr *kptrace.Tracer, rec *trace.Recorder) error {
	if _, dropped := rec.Stats(); dropped > 0 {
		return fmt.Errorf("correlate: event recorder overflowed (%d dropped); enlarge traceCapacity", dropped)
	}
	res := correlate.Kernel(ktr.Events(), rec.Events())
	if len(res.OrphanKernel) > 0 {
		return fmt.Errorf("correlate: %d kernel copies have no application-level explanation (coverage %.3f)",
			len(res.OrphanKernel), res.Coverage())
	}
	if len(res.OrphanSends) > 0 {
		return fmt.Errorf("correlate: %d application sends produced no kernel copy", len(res.OrphanSends))
	}
	return nil
}

// SweepSeeds is the soak mode behind `embera-bench -exp FUZZ -seeds N`: it
// fans the seed range [start, start+n) × every requested platform out as
// one concurrent exp.RunMatrix sweep (each seed is one generated workload
// name, each cell an isolated machine), then replays the differential
// checks per cell and the cross-platform comparisons per seed. The first
// failing seed — lowest seed, platform-name order within a seed — is
// returned as an error ending with its one-line repro command. It returns
// the number of cells executed.
func SweepSeeds(platformNames []string, start int64, n int, opts platform.Options) (int, error) {
	return SweepSeedsCtx(context.Background(), platformNames, start, n, opts)
}

// SweepSeedsCtx is SweepSeeds with cooperative cancellation: the context
// is checked between chunks, so an interrupted soak finishes the chunk in
// flight (no half-verified seeds) and returns ctx.Err() with the cell
// count so far. Callers distinguish a clean interrupt (context.Canceled
// after Ctrl-C) from a real differential failure.
func SweepSeedsCtx(ctx context.Context, platformNames []string, start int64, n int, opts platform.Options) (int, error) {
	return sweepSeeds(ctx, platformNames, start, n, opts, false)
}

// SweepSeedsMigrated is the migrated twin of SweepSeeds: every cell runs
// with the fuzzed migration scheduler attached, so the soak asserts that
// checksums, flow conservation and monitor agreement survive a different
// random migrate/reconnect schedule in every generated workload. Failures
// carry the "embera-bench -exp CTL -seed <n>" repro line.
func SweepSeedsMigrated(platformNames []string, start int64, n int, opts platform.Options) (int, error) {
	return sweepSeeds(context.Background(), platformNames, start, n, opts, true)
}

// SweepSeedsMigratedCtx is SweepSeedsMigrated with cooperative
// cancellation, mirroring SweepSeedsCtx.
func SweepSeedsMigratedCtx(ctx context.Context, platformNames []string, start int64, n int, opts platform.Options) (int, error) {
	return sweepSeeds(ctx, platformNames, start, n, opts, true)
}

func sweepSeeds(ctx context.Context, platformNames []string, start int64, n int, opts platform.Options, migrate bool) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("conformance: sweep needs a positive seed count, got %d", n)
	}
	if platformNames == nil {
		platformNames = platform.Names()
	}
	repro := fuzzwl.ReproCommand
	if migrate {
		repro = ctlReproCommand
	}
	const chunk = 16 // seeds per RunMatrix call: bounds in-flight machines
	cells := 0
	for lo := start; lo < start+int64(n); lo += chunk {
		if err := ctx.Err(); err != nil {
			return cells, err
		}
		hi := lo + chunk
		if max := start + int64(n); hi > max {
			hi = max
		}
		names := make([]string, 0, hi-lo)
		for s := lo; s < hi; s++ {
			names = append(names, fuzzwl.Name(s))
		}
		eopts := exp.Options{Monitor: diffMonitorConfig(), Options: opts}
		// The migrated sweep's Customize hook is shared across the chunk's
		// concurrent cells, so the per-cell schedule results are collected
		// under a lock, keyed by the cell's own assembly.
		var schedMu sync.Mutex
		scheds := map[*core.App]*ctl.ScheduleResult{}
		if migrate {
			eopts.Customize = func(a *core.App, obs *core.Observer) {
				res := ctl.AttachMigrations(a, ctl.ScheduleFor(a, migrationPoints))
				schedMu.Lock()
				scheds[a] = res
				schedMu.Unlock()
			}
		}
		results, err := exp.RunMatrix(platformNames, names, eopts)
		if err != nil {
			return cells, err
		}
		cells += len(results)
		bySeed := map[string][]exp.MatrixResult{}
		for _, c := range results {
			bySeed[c.Workload] = append(bySeed[c.Workload], c)
		}
		for s := lo; s < hi; s++ {
			if err := checkSweepSeed(bySeed[fuzzwl.Name(s)], scheds); err != nil {
				return cells, fmt.Errorf("%w\nrepro: %s", err, repro(s))
			}
		}
	}
	return cells, nil
}

// checkSweepSeed verifies one seed's row of a sweep: every cell ran clean,
// any attached migration schedule applied without an unexpected failure,
// per-cell differential invariants hold, and results agree across
// platforms.
func checkSweepSeed(row []exp.MatrixResult, scheds map[*core.App]*ctl.ScheduleResult) error {
	if len(row) == 0 {
		return fmt.Errorf("conformance: sweep produced no cells for this seed")
	}
	for _, c := range row {
		if c.Err != nil {
			return fmt.Errorf("conformance: %s × %s: %w", c.Platform, c.Workload, c.Err)
		}
		if sched := scheds[c.Result.App]; sched != nil {
			if err := sched.Err(); err != nil {
				return fmt.Errorf("conformance: %s × %s: migration schedule: %w", c.Platform, c.Workload, err)
			}
		}
		if err := CheckRun(c.Result); err != nil {
			return fmt.Errorf("conformance: %s × %s: %w", c.Platform, c.Workload, err)
		}
	}
	for _, c := range row[1:] {
		ref := row[0]
		if c.Result.Instance.Checksum() != ref.Result.Instance.Checksum() ||
			c.Result.Instance.Units() != ref.Result.Instance.Units() {
			return fmt.Errorf("conformance: %s: %s result %016x/%d disagrees with %s %016x/%d",
				c.Workload, c.Platform, c.Result.Instance.Checksum(), c.Result.Instance.Units(),
				ref.Platform, ref.Result.Instance.Checksum(), ref.Result.Instance.Units())
		}
	}
	return nil
}
