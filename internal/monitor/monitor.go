// Package monitor turns EMBera's pull-only observation model into a
// streaming observation pipeline:
//
//	samplers  →  sharded ring buffer  →  windowed aggregation  →  sinks
//
// The paper's observer (internal/core, §3.3) answers one ObsRequest with
// one ObsReport — useful for a final Figure-5-style report, but blind to
// everything between queries. The monitor instead samples every component
// on a configurable period per observation level, timestamping through the
// platform binding's clock — virtual time on the simulators (runs stay
// deterministic), wall-clock time on the native platform (rates are real)
// — and the SampleAll fast path so sampling costs neither simulated time
// nor a message round-trip. Samples land in a
// sharded, fixed-capacity ring (ring.go) that never grows and never loses
// data silently: under overload the newest samples are shed and counted. A
// pump flow drains the ring every window and folds samples into
// per-component aggregates (window.go): rolling send/receive-operation
// rates, mailbox-depth high-water marks, and log-bucketed
// latency/occupancy histograms with p50/p95/p99. Closed windows stream to
// pluggable sinks (sink.go): in-memory for tests, JSONL for export, or the
// trace event stream for the existing binary tooling.
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"embera/internal/core"
)

// Sample is one observation of one component at one sampling tick.
type Sample struct {
	// TimeUS is the platform time of the tick (µs since monitoring
	// started): virtual time on the simulated platforms, wall-clock time
	// on native.
	TimeUS int64
	// Level is the observation level the sampler was driving.
	Level core.ObsLevel
	core.FastSample
}

// LevelPeriod configures one sampler: observation level and its sampling
// period in platform microseconds.
type LevelPeriod struct {
	Level    core.ObsLevel
	PeriodUS int64
}

// Config parameterizes a Monitor. The zero value selects the defaults
// noted on each field.
type Config struct {
	// Levels lists the samplers to run. Default: application-level
	// sampling every 1 ms of virtual time. OS-level sampling is the
	// expensive one (it walks platform accounting); give it a coarser
	// period.
	Levels []LevelPeriod
	// RingCapacity is the total buffered-sample capacity (default 4096).
	RingCapacity int
	// RingShards is the lock-sharding factor (default 4).
	RingShards int
	// WindowUS is the aggregation window length (default 10 ms).
	WindowUS int64
	// Sinks receive closed windows. A MemorySink is always attached
	// internally so Totals works; list additional sinks here.
	Sinks []Sink
}

func (cfg *Config) setDefaults() {
	if len(cfg.Levels) == 0 {
		cfg.Levels = []LevelPeriod{{Level: core.LevelApplication, PeriodUS: 1000}}
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = 4096
	}
	if cfg.RingShards == 0 {
		cfg.RingShards = 4
	}
	if cfg.WindowUS == 0 {
		cfg.WindowUS = 10_000
	}
}

// samplerState is one sampler flow's live configuration. The period is
// atomic so the paper's control functions can retune a running sampler —
// a long-running front end (embera-serve) changes sampling rates without
// restarting the assembly — while the sampler flow reads it every tick.
type samplerState struct {
	level    core.ObsLevel
	periodUS atomic.Int64
}

// Monitor owns one streaming observation pipeline over one application.
// The counters are atomic because on the native platform each sampler and
// the pump are real goroutines; on the simulated platforms the atomics are
// uncontended and free.
type Monitor struct {
	app  *core.App
	cfg  Config
	ring *Ring
	agg  *Aggregator
	mem  *MemorySink

	// samplers carries the live sampler configuration (one entry per
	// cfg.Levels entry); windowUS and paused are the pump/sampler knobs the
	// control surface flips at run time. All atomic: control calls arrive
	// from arbitrary goroutines while the flows read them.
	samplers []*samplerState
	windowUS atomic.Int64
	paused   atomic.Bool

	// clockComp anchors the monitor's clock: timestamps come from the
	// binding's NowUS through the app's first component, the same clock
	// the middleware instrumentation uses. On the simulators that is
	// virtual time and sampling stays deterministic; on the native
	// platform it is the wall clock, so window spans and rates reflect
	// real elapsed time rather than the sum of requested sleep periods.
	clockComp *core.Component
	baseUS    int64 // clock reading when Start ran; timestamps are relative

	samples      atomic.Uint64 // samples successfully pushed
	sinkErrs     atomic.Uint64
	liveSamplers atomic.Int32
	started      bool

	// drainBuf is the pump flow's reusable drain scratch (the pump is the
	// only flow touching it).
	drainBuf []Sample

	stop     chan struct{}
	stopOnce sync.Once
}

// nowUS reads the monitor clock, relative to Start.
func (m *Monitor) nowUS() int64 {
	if m.clockComp == nil {
		return 0
	}
	return m.app.Binding().NowUS(m.clockComp) - m.baseUS
}

// New validates cfg and builds the pipeline stages. Call Start (before or
// after App.Start, in either order) to spawn the sampler and pump flows.
func New(app *core.App, cfg Config) (*Monitor, error) {
	if app == nil {
		return nil, fmt.Errorf("monitor: nil app")
	}
	cfg.setDefaults()
	for _, lp := range cfg.Levels {
		if lp.PeriodUS <= 0 {
			return nil, fmt.Errorf("monitor: level %s has non-positive period %d µs",
				lp.Level, lp.PeriodUS)
		}
	}
	if cfg.WindowUS <= 0 {
		return nil, fmt.Errorf("monitor: non-positive window %d µs", cfg.WindowUS)
	}
	if cfg.RingCapacity < 0 || cfg.RingShards < 0 {
		return nil, fmt.Errorf("monitor: negative ring capacity/shards %d/%d",
			cfg.RingCapacity, cfg.RingShards)
	}
	for i, s := range cfg.Sinks {
		if s == nil {
			return nil, fmt.Errorf("monitor: sink %d is nil", i)
		}
	}
	// Samples shard by component index, so shards beyond the component
	// count would sit empty while shrinking every used shard's slice of
	// the capacity. Clamp (assemble the application before New).
	if n := len(app.Components()); n > 0 && cfg.RingShards > n {
		cfg.RingShards = n
	}
	m := &Monitor{
		app:  app,
		cfg:  cfg,
		ring: NewRing(cfg.RingCapacity, cfg.RingShards),
		agg:  NewAggregator(0),
		mem:  NewMemorySink(),
		stop: make(chan struct{}),
	}
	if comps := app.Components(); len(comps) > 0 {
		m.clockComp = comps[0]
	}
	for _, lp := range cfg.Levels {
		st := &samplerState{level: lp.Level}
		st.periodUS.Store(lp.PeriodUS)
		m.samplers = append(m.samplers, st)
	}
	m.windowUS.Store(cfg.WindowUS)
	m.cfg.Sinks = append([]Sink{m.mem}, cfg.Sinks...)
	// Sinks that record loss accounting alongside the data (the JSONL
	// export) get the monitor's counters wired in here, so every report
	// path can surface drops without the assembly threading the monitor
	// through to its sinks by hand.
	for _, s := range m.cfg.Sinks {
		if ca, ok := s.(CounterAttacher); ok {
			ca.AttachCounters(m)
		}
	}
	return m, nil
}

// Start spawns one sampler flow per configured level plus the pump flow.
// All flows are framework services: they consume no modelled CPU, and they
// terminate once the application has quiesced, so a monitored run leaves
// the event queue as empty as a bare one.
func (m *Monitor) Start() error {
	if m.started {
		return fmt.Errorf("monitor: already started")
	}
	m.started = true
	if m.clockComp != nil {
		m.baseUS = m.app.Binding().NowUS(m.clockComp)
	}
	m.liveSamplers.Store(int32(len(m.samplers)))
	for i, st := range m.samplers {
		st := st
		m.app.SpawnDriver(fmt.Sprintf("monitor/sampler-%d-%s", i, st.level), func(f core.Flow) {
			m.sampleLoop(f, st)
		})
	}
	m.app.SpawnDriver("monitor/pump", func(f core.Flow) { m.pumpLoop(f) })
	return nil
}

// SampleTick is the monitor's per-tick hot path: sweep every component of
// app through the SampleAll fast path into buf, wrap the sweep into ring
// samples stamped nowUS in batch, and push the whole tick into the ring as
// one batch (one lock acquisition per shard instead of one per sample). It
// returns the accepted count and the two buffers for reuse — pass them
// back on the next tick and the steady state allocates nothing.
//
// It is exported so the top-level benchmarks, the perfstat micro harness
// and the zero-alloc regression test measure exactly the code the sampler
// flows execute, not a copy that could drift.
func SampleTick(app *core.App, level core.ObsLevel, nowUS int64, ring *Ring,
	buf []core.FastSample, batch []Sample) (accepted int, bufOut []core.FastSample, batchOut []Sample) {
	buf = app.SampleAll(level, buf[:0])
	batch = batch[:0]
	for i := range buf {
		batch = append(batch, Sample{TimeUS: nowUS, Level: level, FastSample: buf[i]})
	}
	return ring.PushBatch(batch), buf, batch
}

// sampleLoop is one sampler: sleep a period of virtual time, run one
// SampleTick. The per-tick buffers are reused across ticks, so
// steady-state sampling performs no per-tick allocation. Period and pause
// state are re-read every tick, so live control changes take effect within
// one period.
func (m *Monitor) sampleLoop(f core.Flow, st *samplerState) {
	n := len(m.app.Components())
	buf := make([]core.FastSample, 0, n)
	batch := make([]Sample, 0, n)
	for !m.app.Done() && !m.stopping() {
		f.SleepUS(st.periodUS.Load())
		if m.paused.Load() {
			continue
		}
		var accepted int
		accepted, buf, batch = SampleTick(m.app, st.level, m.nowUS(), m.ring, buf, batch)
		if accepted > 0 {
			m.samples.Add(uint64(accepted))
		}
	}
	m.liveSamplers.Add(-1)
}

// pumpLoop drains the ring every window, folds the samples into the
// aggregator and streams the closed windows to the sinks. It exits after
// the final drain: application quiesced, every sampler gone, ring empty.
func (m *Monitor) pumpLoop(f core.Flow) {
	for {
		f.SleepUS(m.windowUS.Load())
		now := m.nowUS()
		drained := m.drainAndFlush(now)
		if drained == 0 && m.liveSamplers.Load() == 0 && (m.app.Done() || m.stopping()) {
			// On the native platform a sampler may push its final sample
			// after the drain above and exit before the liveSamplers read.
			// Samplers are certainly gone now, so one more sweep is enough
			// to guarantee every accepted sample reaches a window.
			m.drainAndFlush(m.nowUS())
			return
		}
	}
}

// drainAndFlush moves every buffered sample into the aggregator, closes the
// window at now and streams it to the sinks, returning how many samples the
// drain moved. The drain scratch and the aggregator's flush buffer are both
// reused run-long, so a window costs no allocation beyond what the sinks
// retain.
func (m *Monitor) drainAndFlush(now int64) int {
	m.drainBuf = m.ring.DrainInto(m.drainBuf[:0])
	for i := range m.drainBuf {
		m.agg.Add(m.drainBuf[i])
	}
	for _, w := range m.agg.Flush(now) {
		for _, sink := range m.cfg.Sinks {
			if err := sink.WriteWindow(w); err != nil {
				m.sinkErrs.Add(1)
			}
		}
	}
	return len(m.drainBuf)
}

// Stop asks the sampler and pump flows to wind down even though the
// application never quiesced — the error-path counterpart of the natural
// exit. Flows notice within one period/window of platform time. On the
// simulated platforms the flows are daemons and a stop is never needed; on
// the native platform a harness that started the monitor and then failed
// before (or during) the run must call Stop or the driver goroutines poll
// forever. Safe to call from any goroutine, any number of times.
func (m *Monitor) Stop() { m.stopOnce.Do(func() { close(m.stop) }) }

// stopping reports whether Stop was called.
func (m *Monitor) stopping() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// SetPeriod retunes every sampler driving the given observation level to a
// new sampling period, live: the next tick after the store uses the new
// period. It is the paper's sampling-rate control function exposed at run
// time (embera-serve's control API lands here) and is safe to call from any
// goroutine on any platform — the samplers read the period atomically.
func (m *Monitor) SetPeriod(level core.ObsLevel, periodUS int64) error {
	if periodUS <= 0 {
		return fmt.Errorf("monitor: non-positive period %d µs", periodUS)
	}
	found := false
	for _, st := range m.samplers {
		if st.level == level {
			st.periodUS.Store(periodUS)
			found = true
		}
	}
	if !found {
		return fmt.Errorf("monitor: no sampler at level %s", level)
	}
	return nil
}

// SetWindowUS changes the aggregation window length, live; the pump picks
// it up on its next wake.
func (m *Monitor) SetWindowUS(windowUS int64) error {
	if windowUS <= 0 {
		return fmt.Errorf("monitor: non-positive window %d µs", windowUS)
	}
	m.windowUS.Store(windowUS)
	return nil
}

// Pause suspends sampling without stopping the sampler flows: ticks keep
// firing but take no samples, so Resume restarts observation instantly.
// The pump keeps draining, so windows already buffered still close.
func (m *Monitor) Pause() { m.paused.Store(true) }

// Resume re-enables sampling after a Pause.
func (m *Monitor) Resume() { m.paused.Store(false) }

// Paused reports whether sampling is currently suspended.
func (m *Monitor) Paused() bool { return m.paused.Load() }

// Levels reports the current live sampler configuration, reflecting any
// SetPeriod changes.
func (m *Monitor) Levels() []LevelPeriod {
	out := make([]LevelPeriod, len(m.samplers))
	for i, st := range m.samplers {
		out[i] = LevelPeriod{Level: st.level, PeriodUS: st.periodUS.Load()}
	}
	return out
}

// WindowUS reports the current aggregation window length.
func (m *Monitor) WindowUS() int64 { return m.windowUS.Load() }

// Windows returns every window closed so far, in time order.
func (m *Monitor) Windows() []WindowStats { return m.mem.Windows() }

// Totals merges every closed window into one whole-run aggregate per
// component, sorted by component name.
func (m *Monitor) Totals() []WindowStats { return MergeWindows(m.mem.Windows()) }

// Samples reports how many samples were accepted into the ring.
func (m *Monitor) Samples() uint64 { return m.samples.Load() }

// Dropped reports how many samples the ring shed under overload.
func (m *Monitor) Dropped() uint64 { return m.ring.Dropped() }

// SinkErrors reports how many window writes a sink rejected.
func (m *Monitor) SinkErrors() uint64 { return m.sinkErrs.Load() }

// Ring exposes the buffer stage (capacity/shard introspection).
func (m *Monitor) Ring() *Ring { return m.ring }

// FormatTotals renders whole-run totals as the aligned rate/percentile
// table cmd/embera-monitor prints, with the loss accounting — ring drops
// and sink errors — appended so no report path can hide shed data.
func FormatTotals(totals []WindowStats, dropped, sinkErrors uint64) string {
	rows := append([]WindowStats(nil), totals...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Component < rows[j].Component })
	out := fmt.Sprintf("%-16s %8s %10s %10s %9s %7s %7s %7s %9s\n",
		"component", "samples", "send/s", "recv/s", "depth-hw", "d-p50", "d-p95", "d-p99", "lat-p95")
	for _, w := range rows {
		out += fmt.Sprintf("%-16s %8d %10.1f %10.1f %9d %7d %7d %7d %8dµ\n",
			w.Component, w.Samples, w.SendRate, w.RecvRate, w.DepthHigh,
			w.DepthHist.Quantile(0.50), w.DepthHist.Quantile(0.95), w.DepthHist.Quantile(0.99),
			w.LatencyHist.Quantile(0.95))
	}
	out += fmt.Sprintf("ring drops: %d\n", dropped)
	out += fmt.Sprintf("sink errors: %d\n", sinkErrors)
	return out
}
