package exp

import (
	"strings"
	"sync"
	"testing"

	"embera/internal/platform"

	_ "embera/internal/fuzzwl" // rand:<seed> family registration
)

// TestRunMatrixConcurrentSweepsShareRegistry drives several RunMatrix
// sweeps at once — each cell resolves platforms and workloads through the
// shared registries, and the rand:<seed> cells additionally exercise the
// family parser — while other goroutines hammer the registry read paths.
// The assertion is the race detector's: CI runs this package under -race.
func TestRunMatrixConcurrentSweepsShareRegistry(t *testing.T) {
	const sweeps = 4
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = platform.Names()
			_ = platform.WorkloadNames()
			_ = platform.WorkloadListing()
			if _, err := platform.GetWorkload("rand:7"); err != nil {
				t.Errorf("family resolution failed mid-sweep: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, sweeps)
	cellCounts := make([]int, sweeps)
	for i := 0; i < sweeps; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells, err := RunMatrix(nil, []string{"pipeline", "rand:5", "rand:6"},
				Options{Options: platform.Options{Scale: 4}})
			if err != nil {
				errs[i] = err
				return
			}
			cellCounts[i] = len(cells)
			for _, c := range cells {
				if c.Err != nil {
					t.Errorf("sweep %d: %s × %s: %v", i, c.Platform, c.Workload, c.Err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	want := 3 * len(platform.Names())
	for i := 0; i < sweeps; i++ {
		if errs[i] != nil {
			t.Errorf("sweep %d: %v", i, errs[i])
		}
		if errs[i] == nil && cellCounts[i] != want {
			t.Errorf("sweep %d ran %d cells, want %d", i, cellCounts[i], want)
		}
	}
}

// TestRunMatrixRejectsMalformedSeedUpFront is the harness-level regression
// for rand:<seed> parsing: a malformed seed fails the whole sweep before
// any cell spawns, with the uniform registry-listing error every front-end
// turns into an exit-2 usage failure.
func TestRunMatrixRejectsMalformedSeedUpFront(t *testing.T) {
	for _, bad := range []string{"rand:", "rand:nope", "rand:-1"} {
		_, err := RunMatrix(nil, []string{bad}, Options{})
		if err == nil {
			t.Errorf("%q accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "registered:") ||
			!strings.Contains(err.Error(), "rand:<seed>") {
			t.Errorf("%q: error lacks the registry listing: %v", bad, err)
		}
	}
}
