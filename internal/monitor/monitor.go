// Package monitor turns EMBera's pull-only observation model into a
// streaming observation pipeline:
//
//	samplers  →  sharded ring buffer  →  windowed aggregation  →  sinks
//
// The paper's observer (internal/core, §3.3) answers one ObsRequest with
// one ObsReport — useful for a final Figure-5-style report, but blind to
// everything between queries. The monitor instead samples every component
// on a configurable period per observation level, timestamping through the
// platform binding's clock — virtual time on the simulators (runs stay
// deterministic), wall-clock time on the native platform (rates are real)
// — and the SampleAll fast path so sampling costs neither simulated time
// nor a message round-trip. Samples land in a
// sharded, fixed-capacity ring (ring.go) that never grows and never loses
// data silently: under overload the newest samples are shed and counted. A
// pump flow drains the ring every window and folds samples into
// per-component aggregates (window.go): rolling send/receive-operation
// rates, mailbox-depth high-water marks, and log-bucketed
// latency/occupancy histograms with p50/p95/p99. Closed windows stream to
// pluggable sinks (sink.go): in-memory for tests, JSONL for export, or the
// trace event stream for the existing binary tooling.
package monitor

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"embera/internal/core"
)

// Sample is one observation of one component at one sampling tick.
type Sample struct {
	// TimeUS is the platform time of the tick (µs since monitoring
	// started): virtual time on the simulated platforms, wall-clock time
	// on native.
	TimeUS int64
	// Level is the observation level the sampler was driving.
	Level core.ObsLevel
	core.FastSample
}

// LevelPeriod configures one sampler: observation level and its sampling
// period in platform microseconds.
type LevelPeriod struct {
	Level    core.ObsLevel
	PeriodUS int64
}

// Config parameterizes a Monitor. The zero value selects the defaults
// noted on each field.
type Config struct {
	// Levels lists the samplers to run. Default: application-level
	// sampling every 1 ms of virtual time. OS-level sampling is the
	// expensive one (it walks platform accounting); give it a coarser
	// period.
	Levels []LevelPeriod
	// RingCapacity is the total buffered-sample capacity (default 4096).
	RingCapacity int
	// RingShards is the ring's SPSC sharding factor. The default —
	// min(GOMAXPROCS, number of components) — spreads samples across the
	// parallelism actually available instead of funnelling big assemblies
	// through a fixed shard count; set it explicitly to override.
	RingShards int
	// WindowUS is the aggregation window length (default 10 ms).
	WindowUS int64
	// OverheadBudgetPct caps the sampling duty cycle on wall-clock
	// platforms: the fraction of host time (in percent) one sampler may
	// spend inside its sampling ticks. When the measured per-tick cost
	// exceeds the budget's share of the configured period, the sampler
	// backs its effective period off just far enough to fit, and recovers
	// toward the configured period as ticks get cheap again. Zero disables
	// the controller; it is also inert on virtual-time platforms, where
	// host-time feedback would perturb deterministic schedules.
	OverheadBudgetPct float64
	// Sinks receive closed windows. A MemorySink is always attached
	// internally so Totals works; list additional sinks here.
	Sinks []Sink
}

func (cfg *Config) setDefaults(ncomps int) {
	if len(cfg.Levels) == 0 {
		cfg.Levels = []LevelPeriod{{Level: core.LevelApplication, PeriodUS: 1000}}
	}
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = 4096
	}
	if cfg.RingShards == 0 {
		cfg.RingShards = runtime.GOMAXPROCS(0)
		if ncomps > 0 && cfg.RingShards > ncomps {
			cfg.RingShards = ncomps
		}
		if cfg.RingShards < 1 {
			cfg.RingShards = 1
		}
	}
	if cfg.WindowUS == 0 {
		cfg.WindowUS = 10_000
	}
}

// samplerState is one sampler flow's live configuration. The periods are
// atomic so the paper's control functions can retune a running sampler —
// a long-running front end (embera-serve) changes sampling rates without
// restarting the assembly — while the sampler flow reads them every tick.
type samplerState struct {
	level core.ObsLevel
	// basePeriodUS is the configured period (what SetPeriod sets);
	// effPeriodUS is the period actually slept, which the adaptive
	// controller may back off above base when ticks cost more than the
	// overhead budget allows. With the controller off they are equal.
	basePeriodUS atomic.Int64
	effPeriodUS  atomic.Int64
	// ewmaTickNs smooths the measured per-tick host cost (controller state;
	// written by the sampler flow, read by SetPeriod for recomputes).
	ewmaTickNs atomic.Int64
	// wake interrupts the wall-clock wait so a live SetPeriod applies
	// immediately instead of after one sleep at the old period.
	wake chan struct{}
	// writer is the sampler's own partition of the ring's shards: one
	// producer per shard, no lock on the push path.
	writer *Writer
}

// Monitor owns one streaming observation pipeline over one application.
// The counters are atomic because on the native platform each sampler and
// the pump are real goroutines; on the simulated platforms the atomics are
// uncontended and free.
type Monitor struct {
	app  *core.App
	cfg  Config
	ring *Ring
	agg  *Aggregator
	mem  *MemorySink

	// samplers carries the live sampler configuration (one entry per
	// cfg.Levels entry); windowUS and paused are the pump/sampler knobs the
	// control surface flips at run time. All atomic: control calls arrive
	// from arbitrary goroutines while the flows read them.
	samplers []*samplerState
	windowUS atomic.Int64
	paused   atomic.Bool

	// clockComp anchors the monitor's clock: timestamps come from the
	// binding's NowUS through the app's first component, the same clock
	// the middleware instrumentation uses. On the simulators that is
	// virtual time and sampling stays deterministic; on the native
	// platform it is the wall clock, so window spans and rates reflect
	// real elapsed time rather than the sum of requested sleep periods.
	clockComp *core.Component
	baseUS    int64 // clock reading when Start ran; timestamps are relative

	samples      atomic.Uint64 // samples successfully pushed
	sinkErrs     atomic.Uint64
	liveSamplers atomic.Int32
	started      bool

	// wallClock marks a platform whose NowUS is host time. There the
	// monitor flows wait on interruptible timers (woken by control calls,
	// Stop and application quiescence) instead of fixed platform sleeps,
	// and the adaptive controller may govern the sampling period. On
	// virtual-time platforms both stay off: flows sleep in simulated time
	// and runs remain deterministic.
	wallClock bool
	budgetPct float64
	appDone   <-chan struct{} // closed when every component terminated
	// samplersDone closes when the last sampler flow exits: the pump's
	// signal that one final drain accounts for every accepted sample.
	samplersDone chan struct{}
	pumpWake     chan struct{} // interrupts the pump's wall-clock wait

	// drainBuf is the pump flow's reusable drain scratch (the pump is the
	// only flow touching it).
	drainBuf []Sample

	stop     chan struct{}
	stopOnce sync.Once
}

// nowUS reads the monitor clock, relative to Start.
func (m *Monitor) nowUS() int64 {
	if m.clockComp == nil {
		return 0
	}
	return m.app.Binding().NowUS(m.clockComp) - m.baseUS
}

// New validates cfg and builds the pipeline stages. Call Start (before or
// after App.Start, in either order) to spawn the sampler and pump flows.
func New(app *core.App, cfg Config) (*Monitor, error) {
	if app == nil {
		return nil, fmt.Errorf("monitor: nil app")
	}
	ncomps := len(app.Components())
	cfg.setDefaults(ncomps)
	for _, lp := range cfg.Levels {
		if lp.PeriodUS <= 0 {
			return nil, fmt.Errorf("monitor: level %s has non-positive period %d µs",
				lp.Level, lp.PeriodUS)
		}
	}
	if cfg.WindowUS <= 0 {
		return nil, fmt.Errorf("monitor: non-positive window %d µs", cfg.WindowUS)
	}
	if cfg.RingCapacity < 0 || cfg.RingShards < 0 {
		return nil, fmt.Errorf("monitor: negative ring capacity/shards %d/%d",
			cfg.RingCapacity, cfg.RingShards)
	}
	if cfg.OverheadBudgetPct < 0 {
		return nil, fmt.Errorf("monitor: negative overhead budget %g%%", cfg.OverheadBudgetPct)
	}
	for i, s := range cfg.Sinks {
		if s == nil {
			return nil, fmt.Errorf("monitor: sink %d is nil", i)
		}
	}
	// Samples shard by component index, so shards beyond the component
	// count would sit empty while shrinking every used shard's slice of
	// the capacity. Clamp (assemble the application before New).
	if ncomps > 0 && cfg.RingShards > ncomps {
		cfg.RingShards = ncomps
	}
	// The SPSC contract needs one shard per sampler flow at minimum (each
	// writer partition must own at least one shard), and NewRing clamps the
	// shard count down to the capacity — so raise both floors here.
	if cfg.RingShards < len(cfg.Levels) {
		cfg.RingShards = len(cfg.Levels)
	}
	if cfg.RingCapacity < cfg.RingShards {
		cfg.RingCapacity = cfg.RingShards
	}
	m := &Monitor{
		app:          app,
		cfg:          cfg,
		ring:         NewRing(cfg.RingCapacity, cfg.RingShards),
		agg:          NewAggregator(0),
		mem:          NewMemorySink(),
		stop:         make(chan struct{}),
		budgetPct:    cfg.OverheadBudgetPct,
		appDone:      app.Quiesced(),
		samplersDone: make(chan struct{}),
		pumpWake:     make(chan struct{}, 1),
	}
	if wc, ok := app.Binding().(core.WallClocked); ok && wc.WallClock() {
		m.wallClock = true
	}
	if comps := app.Components(); len(comps) > 0 {
		m.clockComp = comps[0]
	}
	for i, lp := range cfg.Levels {
		st := &samplerState{
			level:  lp.Level,
			wake:   make(chan struct{}, 1),
			writer: m.ring.Writer(i, len(cfg.Levels)),
		}
		st.basePeriodUS.Store(lp.PeriodUS)
		st.effPeriodUS.Store(lp.PeriodUS)
		m.samplers = append(m.samplers, st)
	}
	m.windowUS.Store(cfg.WindowUS)
	m.cfg.Sinks = append([]Sink{m.mem}, cfg.Sinks...)
	// Sinks that record loss accounting alongside the data (the JSONL
	// export) get the monitor's counters wired in here, so every report
	// path can surface drops without the assembly threading the monitor
	// through to its sinks by hand.
	for _, s := range m.cfg.Sinks {
		if ca, ok := s.(CounterAttacher); ok {
			ca.AttachCounters(m)
		}
	}
	return m, nil
}

// Start spawns one sampler flow per configured level plus the pump flow.
// All flows are framework services: they consume no modelled CPU, and they
// terminate once the application has quiesced, so a monitored run leaves
// the event queue as empty as a bare one.
func (m *Monitor) Start() error {
	if m.started {
		return fmt.Errorf("monitor: already started")
	}
	m.started = true
	if m.clockComp != nil {
		m.baseUS = m.app.Binding().NowUS(m.clockComp)
	}
	m.liveSamplers.Store(int32(len(m.samplers)))
	for i, st := range m.samplers {
		st := st
		m.app.SpawnDriver(fmt.Sprintf("monitor/sampler-%d-%s", i, st.level), func(f core.Flow) {
			m.sampleLoop(f, st)
		})
	}
	m.app.SpawnDriver("monitor/pump", func(f core.Flow) { m.pumpLoop(f) })
	return nil
}

// SampleTick is the monitor's per-tick hot path: sweep every component of
// app through the SampleAll fast path into buf, wrap the sweep into ring
// samples stamped nowUS in batch, and push the whole tick through the
// writer's shard partition (one producer-cursor release per shard instead
// of a lock per sample). It returns the accepted count and the two buffers
// for reuse — pass them back on the next tick and the steady state
// allocates nothing.
//
// It is exported so the top-level benchmarks, the perfstat micro harness
// and the zero-alloc regression test measure exactly the code the sampler
// flows execute, not a copy that could drift.
func SampleTick(app *core.App, level core.ObsLevel, nowUS int64, w *Writer,
	buf []core.FastSample, batch []Sample) (accepted int, bufOut []core.FastSample, batchOut []Sample) {
	buf = app.SampleAll(level, buf[:0])
	batch = batch[:0]
	for i := range buf {
		batch = append(batch, Sample{TimeUS: nowUS, Level: level, FastSample: buf[i]})
	}
	return w.PushBatch(batch), buf, batch
}

// sampleLoop is one sampler: wait one period, run one SampleTick. The
// per-tick buffers are reused across ticks, so steady-state sampling
// performs no per-tick allocation. Period and pause state are re-read
// every tick; on wall-clock platforms the wait is additionally
// interruptible (SetPeriod, Stop, application quiescence), so control
// changes apply immediately rather than after one sleep at the old period,
// and wind-down costs microseconds rather than a final period.
func (m *Monitor) sampleLoop(f core.Flow, st *samplerState) {
	defer func() {
		if m.liveSamplers.Add(-1) == 0 {
			close(m.samplersDone)
		}
	}()
	n := len(m.app.Components())
	buf := make([]core.FastSample, 0, n)
	batch := make([]Sample, 0, n)
	var timer *time.Timer
	if m.wallClock {
		timer = time.NewTimer(time.Hour)
		timer.Stop()
		defer timer.Stop()
	}
	govern := m.wallClock && m.budgetPct > 0
	for !m.app.Done() && !m.stopping() {
		m.samplerWait(f, st, timer)
		if m.paused.Load() {
			continue
		}
		var t0 time.Time
		if govern {
			t0 = time.Now()
		}
		var accepted int
		accepted, buf, batch = SampleTick(m.app, st.level, m.nowUS(), st.writer, buf, batch)
		if accepted > 0 {
			m.samples.Add(uint64(accepted))
		}
		if govern {
			m.observeTickCost(st, time.Since(t0))
		}
	}
}

// samplerWait blocks for one effective period. Virtual-time platforms
// sleep in simulated time (the deterministic schedule must not depend on
// host events); wall-clock platforms wait on a timer that SetPeriod, Stop
// and application quiescence can all cut short.
func (m *Monitor) samplerWait(f core.Flow, st *samplerState, timer *time.Timer) {
	us := st.effPeriodUS.Load()
	if !m.wallClock {
		f.SleepUS(us)
		return
	}
	timer.Reset(time.Duration(us) * time.Microsecond)
	select {
	case <-timer.C:
	case <-st.wake:
		timer.Stop()
	case <-m.stop:
		timer.Stop()
	case <-m.appDone:
		timer.Stop()
	}
}

// ewmaShift is the adaptive controller's smoothing: each tick contributes
// 1/8 of its cost to the moving average, so a single slow tick (GC pause,
// scheduler hiccup) cannot slam the period, while sustained load moves the
// average within a handful of ticks.
const ewmaShift = 3

// maxBackoffFactor caps the governed period at this multiple of the base
// period: under any load the sampler still samples, just coarsely.
const maxBackoffFactor = 1000

// observeTickCost folds one measured tick cost into the EWMA and
// republishes the effective period.
func (m *Monitor) observeTickCost(st *samplerState, cost time.Duration) {
	c := int64(cost)
	if c < 0 {
		c = 0
	}
	ewma := st.ewmaTickNs.Load()
	if ewma == 0 {
		ewma = c
	} else {
		ewma += (c - ewma) >> ewmaShift
	}
	st.ewmaTickNs.Store(ewma)
	st.effPeriodUS.Store(governPeriodUS(ewma, st.basePeriodUS.Load(), m.budgetPct))
}

// governPeriodUS is the controller law: the smallest period ≥ base at
// which a tick costing ewmaNs stays within budgetPct of host time, capped
// at maxBackoffFactor×base. duty = ewmaNs/(periodUS·1000) ≤ budgetPct/100
// solves to periodUS ≥ ewmaNs/(10·budgetPct).
func governPeriodUS(ewmaNs, baseUS int64, budgetPct float64) int64 {
	if budgetPct <= 0 {
		return baseUS
	}
	eff := baseUS
	if minUS := int64(float64(ewmaNs) / (10 * budgetPct)); minUS > eff {
		eff = minUS
	}
	if capUS := baseUS * maxBackoffFactor; eff > capUS {
		eff = capUS
	}
	return eff
}

// pumpLoop drains the ring every window, folds the samples into the
// aggregator and streams the closed windows to the sinks. It exits after
// the final drain: application quiesced, every sampler gone, ring empty.
func (m *Monitor) pumpLoop(f core.Flow) {
	if m.wallClock {
		m.pumpLoopWall()
		return
	}
	for {
		f.SleepUS(m.windowUS.Load())
		now := m.nowUS()
		drained := m.drainAndFlush(now)
		if drained == 0 && m.liveSamplers.Load() == 0 && (m.app.Done() || m.stopping()) {
			// A sampler may push its final sample after the drain above and
			// exit before the liveSamplers read. Samplers are certainly
			// gone now, so one more sweep is enough to guarantee every
			// accepted sample reaches a window.
			m.drainAndFlush(m.nowUS())
			return
		}
	}
}

// pumpLoopWall is the pump on wall-clock platforms: the window wait is an
// interruptible timer, and the exit is event-driven — application
// quiescence (or Stop) wakes it immediately, it waits for the samplers'
// prompt exit, and one final drain accounts for every accepted sample.
// Before this the pump slept whole uninterruptible windows after the
// application had already finished, which dominated the measured cost of
// monitoring short native runs.
func (m *Monitor) pumpLoopWall() {
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		timer.Reset(time.Duration(m.windowUS.Load()) * time.Microsecond)
		select {
		case <-timer.C:
		case <-m.pumpWake:
			timer.Stop()
		case <-m.stop:
			timer.Stop()
		case <-m.appDone:
			timer.Stop()
		}
		m.drainAndFlush(m.nowUS())
		if m.app.Done() || m.stopping() {
			// The same events that woke the pump wake every sampler, so
			// this wait is microseconds, not a period.
			<-m.samplersDone
			m.drainAndFlush(m.nowUS())
			return
		}
	}
}

// drainAndFlush moves every buffered sample into the aggregator, closes the
// window at now and streams it to the sinks, returning how many samples the
// drain moved. The drain scratch and the aggregator's flush buffer are both
// reused run-long, so a window costs no allocation beyond what the sinks
// retain.
func (m *Monitor) drainAndFlush(now int64) int {
	m.drainBuf = m.ring.DrainInto(m.drainBuf[:0])
	for i := range m.drainBuf {
		m.agg.Add(m.drainBuf[i])
	}
	for _, w := range m.agg.Flush(now) {
		for _, sink := range m.cfg.Sinks {
			if err := sink.WriteWindow(w); err != nil {
				m.sinkErrs.Add(1)
			}
		}
	}
	return len(m.drainBuf)
}

// Stop asks the sampler and pump flows to wind down even though the
// application never quiesced — the error-path counterpart of the natural
// exit. Flows notice within one period/window of platform time. On the
// simulated platforms the flows are daemons and a stop is never needed; on
// the native platform a harness that started the monitor and then failed
// before (or during) the run must call Stop or the driver goroutines poll
// forever. Safe to call from any goroutine, any number of times.
func (m *Monitor) Stop() { m.stopOnce.Do(func() { close(m.stop) }) }

// stopping reports whether Stop was called.
func (m *Monitor) stopping() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// SetPeriod retunes every sampler driving the given observation level to a
// new sampling period, live. It is the paper's sampling-rate control
// function exposed at run time (embera-serve's control API lands here) and
// is safe to call from any goroutine on any platform — the samplers read
// the period atomically. On wall-clock platforms the change also
// interrupts any wait in progress, so retuning a 1 s sampler down to 1 ms
// takes effect now, not up to a second later.
func (m *Monitor) SetPeriod(level core.ObsLevel, periodUS int64) error {
	if periodUS <= 0 {
		return fmt.Errorf("monitor: non-positive period %d µs", periodUS)
	}
	found := false
	for _, st := range m.samplers {
		if st.level == level {
			st.basePeriodUS.Store(periodUS)
			if m.wallClock && m.budgetPct > 0 {
				st.effPeriodUS.Store(governPeriodUS(st.ewmaTickNs.Load(), periodUS, m.budgetPct))
			} else {
				st.effPeriodUS.Store(periodUS)
			}
			select {
			case st.wake <- struct{}{}:
			default:
			}
			found = true
		}
	}
	if !found {
		return fmt.Errorf("monitor: no sampler at level %s", level)
	}
	return nil
}

// SetWindowUS changes the aggregation window length, live; the pump picks
// it up immediately on wall-clock platforms and on its next wake on the
// simulators.
func (m *Monitor) SetWindowUS(windowUS int64) error {
	if windowUS <= 0 {
		return fmt.Errorf("monitor: non-positive window %d µs", windowUS)
	}
	m.windowUS.Store(windowUS)
	select {
	case m.pumpWake <- struct{}{}:
	default:
	}
	return nil
}

// Pause suspends sampling without stopping the sampler flows: ticks keep
// firing but take no samples, so Resume restarts observation instantly.
// The pump keeps draining, so windows already buffered still close.
func (m *Monitor) Pause() { m.paused.Store(true) }

// Resume re-enables sampling after a Pause.
func (m *Monitor) Resume() { m.paused.Store(false) }

// Paused reports whether sampling is currently suspended.
func (m *Monitor) Paused() bool { return m.paused.Load() }

// Levels reports the current live sampler configuration — the configured
// (base) periods, reflecting any SetPeriod changes but not the adaptive
// controller's backoff; see EffectiveLevels for what is actually running.
func (m *Monitor) Levels() []LevelPeriod {
	out := make([]LevelPeriod, len(m.samplers))
	for i, st := range m.samplers {
		out[i] = LevelPeriod{Level: st.level, PeriodUS: st.basePeriodUS.Load()}
	}
	return out
}

// EffectiveLevels reports the period each sampler is actually running at:
// equal to Levels unless the adaptive overhead controller has backed a
// sampler off its configured period under load.
func (m *Monitor) EffectiveLevels() []LevelPeriod {
	out := make([]LevelPeriod, len(m.samplers))
	for i, st := range m.samplers {
		out[i] = LevelPeriod{Level: st.level, PeriodUS: st.effPeriodUS.Load()}
	}
	return out
}

// OverheadBudgetPct reports the configured adaptive sampling budget (0 =
// controller off).
func (m *Monitor) OverheadBudgetPct() float64 { return m.budgetPct }

// WindowUS reports the current aggregation window length.
func (m *Monitor) WindowUS() int64 { return m.windowUS.Load() }

// Windows returns every window closed so far, in time order.
func (m *Monitor) Windows() []WindowStats { return m.mem.Windows() }

// Totals merges every closed window into one whole-run aggregate per
// component, sorted by component name.
func (m *Monitor) Totals() []WindowStats { return MergeWindows(m.mem.Windows()) }

// Samples reports how many samples were accepted into the ring.
func (m *Monitor) Samples() uint64 { return m.samples.Load() }

// Ingest merges a window produced by another process's monitor into this
// one: the window is written to every configured sink (the memory sink
// first, so Windows/Totals see it) and its sample count joins the accepted
// total, preserving the exact samples==windowed invariant across process
// boundaries — each sample is counted by exactly one monitor and ingested
// by exactly one aggregator. Safe to call concurrently with the pump: every
// bundled sink serializes WriteWindow internally.
func (m *Monitor) Ingest(w WindowStats) {
	for _, sink := range m.cfg.Sinks {
		if err := sink.WriteWindow(w); err != nil {
			m.sinkErrs.Add(1)
		}
	}
	m.samples.Add(uint64(w.Samples))
}

// Dropped reports how many samples the ring shed under overload.
func (m *Monitor) Dropped() uint64 { return m.ring.Dropped() }

// SinkErrors reports how many window writes a sink rejected.
func (m *Monitor) SinkErrors() uint64 { return m.sinkErrs.Load() }

// Ring exposes the buffer stage (capacity/shard introspection).
func (m *Monitor) Ring() *Ring { return m.ring }

// FormatTotals renders whole-run totals as the aligned rate/percentile
// table cmd/embera-monitor prints, with the loss accounting — ring drops
// and sink errors — appended so no report path can hide shed data.
func FormatTotals(totals []WindowStats, dropped, sinkErrors uint64) string {
	rows := append([]WindowStats(nil), totals...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Component < rows[j].Component })
	out := fmt.Sprintf("%-16s %8s %10s %10s %9s %7s %7s %7s %9s\n",
		"component", "samples", "send/s", "recv/s", "depth-hw", "d-p50", "d-p95", "d-p99", "lat-p95")
	for _, w := range rows {
		out += fmt.Sprintf("%-16s %8d %10.1f %10.1f %9d %7d %7d %7d %8dµ\n",
			w.Component, w.Samples, w.SendRate, w.RecvRate, w.DepthHigh,
			w.DepthHist.Quantile(0.50), w.DepthHist.Quantile(0.95), w.DepthHist.Quantile(0.99),
			w.LatencyHist.Quantile(0.95))
	}
	out += fmt.Sprintf("ring drops: %d\n", dropped)
	out += fmt.Sprintf("sink errors: %d\n", sinkErrors)
	return out
}
