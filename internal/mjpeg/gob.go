package mjpeg

import (
	"bytes"
	"encoding/gob"
)

// FrameHeader travels between decoder components inside BlockGroup and
// PixelGroup messages. Within one process those messages share the header
// pointer, but on the cluster platform a group may cross a process boundary
// through the wire codec's gob fallback — and gob skips unexported fields,
// which would strand the quantization tables and block geometry the IDCT
// and Reorder stages need. The custom encoding below carries exactly the
// post-parse state those stages use. The entropy-decoding state (Huffman
// tables, scan data) stays behind on purpose: only Fetch consumes it, and
// Fetch never receives a header from the wire.

// headerWire is the explicit gob representation of a parsed FrameHeader.
type headerWire struct {
	Width, Height   int
	RestartInterval int
	Comps           []compWire
	Quant           [4][64]uint16
	MaxH, MaxV      int
	McusX, McusY    int
}

type compWire struct {
	ID                  byte
	H, V                int
	Quant, DCSel, ACSel byte
	BlocksX, BlocksY    int
}

// GobEncode implements gob.GobEncoder.
func (h *FrameHeader) GobEncode() ([]byte, error) {
	w := headerWire{
		Width: h.Width, Height: h.Height, RestartInterval: h.RestartInterval,
		Quant: h.quant,
		MaxH:  h.maxH, MaxV: h.maxV, McusX: h.mcusX, McusY: h.mcusY,
	}
	for _, c := range h.comps {
		w.Comps = append(w.Comps, compWire{
			ID: c.ID, H: c.H, V: c.V,
			Quant: c.Quant, DCSel: c.DCSel, ACSel: c.ACSel,
			BlocksX: c.blocksX, BlocksY: c.blocksY,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (h *FrameHeader) GobDecode(data []byte) error {
	var w headerWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*h = FrameHeader{
		Width: w.Width, Height: w.Height, RestartInterval: w.RestartInterval,
		quant: w.Quant,
		maxH:  w.MaxH, maxV: w.MaxV, mcusX: w.McusX, mcusY: w.McusY,
	}
	for _, c := range w.Comps {
		h.comps = append(h.comps, componentSpec{
			ID: c.ID, H: c.H, V: c.V,
			Quant: c.Quant, DCSel: c.DCSel, ACSel: c.ACSel,
			blocksX: c.BlocksX, blocksY: c.BlocksY,
		})
	}
	return nil
}
