package monitor_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"embera/internal/core"
	"embera/internal/monitor"
	"embera/internal/platform"

	_ "embera/internal/fuzzwl" // register the rand:<seed> workload family
)

const nativeHorizonUS = int64(60 * 1e6)

// windowedSamples sums the per-window sample counts: the number of samples
// that made it all the way through the pipeline into closed windows.
func windowedSamples(ws []monitor.WindowStats) uint64 {
	var n uint64
	for _, w := range ws {
		n += uint64(w.Samples)
	}
	return n
}

// TestAdaptiveBudgetBacksOffNative runs a saturating seeded random workload
// on the native platform under a deliberately impossible overhead budget:
// the controller must back the effective period off the configured base
// (visible through EffectiveLevels), the base period must stay what was
// configured, and the exact accounting contract — every accepted sample
// lands in a closed window — must survive the backoff.
func TestAdaptiveBudgetBacksOffNative(t *testing.T) {
	p := platform.MustGet("native")
	m, a := p.New("adaptive-backoff")
	w := platform.MustGetWorkload("rand:7")
	if _, err := w.Build(a, p, platform.Options{Scale: 60}); err != nil {
		t.Fatal(err)
	}
	// A straggler pins the run open for ~30 ms of wall time so the samplers
	// take enough governed ticks for the EWMA to move, however fast the
	// random DAG itself drains.
	a.MustNewComponent("straggler", func(ctx *core.Ctx) { ctx.SleepUS(30_000) })
	mon, err := monitor.New(a, monitor.Config{
		Levels: []monitor.LevelPeriod{{Level: core.LevelAll, PeriodUS: 100}},
		// With ticks costing microseconds, a 0.0001% budget demands a
		// period of seconds: the controller must saturate well above base.
		OverheadBudgetPct: 0.0001,
		WindowUS:          2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(nativeHorizonUS); err != nil {
		t.Fatal(err)
	}

	base := mon.Levels()[0].PeriodUS
	eff := mon.EffectiveLevels()[0].PeriodUS
	if base != 100 {
		t.Fatalf("base period = %dµs, want the configured 100", base)
	}
	if eff <= base {
		t.Fatalf("effective period = %dµs, want > base %dµs under an impossible budget", eff, base)
	}
	if mon.OverheadBudgetPct() != 0.0001 {
		t.Fatalf("OverheadBudgetPct() = %g, want 0.0001", mon.OverheadBudgetPct())
	}
	if mon.Samples() == 0 {
		t.Fatal("no samples accepted at all")
	}
	if got, want := windowedSamples(mon.Windows()), mon.Samples(); got != want {
		t.Fatalf("windowed samples = %d, accepted = %d; backoff broke exact accounting", got, want)
	}
}

// TestAdaptiveBackoffRatesCoverActualInterval pins the window-rate fix
// under real OverheadBudgetPct backoff: with the sampler governed down to
// the 1000× cap, consecutive ticks arrive many nominal windows apart, the
// windows must record the stretched covered interval, and every rate must
// divide by it — dividing by the 2 ms window length would inflate the rates
// ~25× here.
func TestAdaptiveBackoffRatesCoverActualInterval(t *testing.T) {
	m, a := platform.MustGet("native").New("backoff-rates")
	prod := a.MustNewComponent("prod", func(ctx *core.Ctx) {
		for i := 0; i < 300; i++ {
			ctx.SleepUS(500) // a steady sender pinning the run open ~150 ms
			ctx.Send("out", i, 256)
		}
	}).MustAddRequired("out")
	cons := a.MustNewComponent("cons", func(ctx *core.Ctx) {
		for {
			if _, ok := ctx.Receive("in"); !ok {
				return
			}
		}
	}).MustAddProvided("in", 1<<16)
	a.MustConnect(prod, "out", cons, "in")
	mon, err := monitor.New(a, monitor.Config{
		Levels: []monitor.LevelPeriod{{Level: core.LevelApplication, PeriodUS: 50}},
		// Any measurable tick cost blows a 1e-7 % budget, so the governor
		// saturates at the 1000× cap after the first tick: subsequent ticks
		// land 50 ms apart while windows keep flushing every 2 ms.
		OverheadBudgetPct: 1e-7,
		WindowUS:          2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(nativeHorizonUS); err != nil {
		t.Fatal(err)
	}
	if eff, base := mon.EffectiveLevels()[0].PeriodUS, mon.Levels()[0].PeriodUS; eff <= base {
		t.Fatalf("effective period = %dµs, want > base %dµs", eff, base)
	}
	stretched := false
	for _, w := range mon.Windows() {
		if w.CoveredUS <= 0 {
			t.Fatalf("window %s %d..%d has covered = %d", w.Component, w.StartUS, w.EndUS, w.CoveredUS)
		}
		// Rates must be computed over the covered interval, exactly.
		if w.DeltaSendOps > 0 {
			want := float64(w.DeltaSendOps) / (float64(w.CoveredUS) / 1e6)
			if math.Abs(w.SendRate-want) > 1e-6 {
				t.Fatalf("window %s %d..%d: send rate %v, want %v over covered %dµs",
					w.Component, w.StartUS, w.EndUS, w.SendRate, want, w.CoveredUS)
			}
		}
		if w.CoveredUS > 3*(w.EndUS-w.StartUS) {
			stretched = true
		}
	}
	if !stretched {
		t.Fatal("no window recorded a covered interval stretched past its nominal span — backoff never showed up in the rates")
	}
}

// TestSetPeriodWakesNativeSampler pins the live-retune latency: a sampler
// parked in a 10-second wait must apply a SetPeriod to 500 µs immediately,
// not after the old sleep expires. Before the wake channel this test could
// not pass — the first tick at the new period arrived 10 s in.
func TestSetPeriodWakesNativeSampler(t *testing.T) {
	m, a := platform.MustGet("native").New("retune-wake")
	prod := a.MustNewComponent("prod", func(ctx *core.Ctx) {
		for i := 0; i < 300; i++ {
			ctx.SleepUS(200) // pin the run open ~60 ms of wall time
			ctx.Send("out", i, 256)
		}
	}).MustAddRequired("out")
	cons := a.MustNewComponent("cons", func(ctx *core.Ctx) {
		for {
			if _, ok := ctx.Receive("in"); !ok {
				return
			}
		}
	}).MustAddProvided("in", 1<<16)
	a.MustConnect(prod, "out", cons, "in")
	mon, err := monitor.New(a, monitor.Config{
		Levels:   []monitor.LevelPeriod{{Level: core.LevelApplication, PeriodUS: 10_000_000}},
		WindowUS: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	var retuneErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // let the sampler park in its 10 s wait
		retuneErr = mon.SetPeriod(core.LevelApplication, 500)
	}()
	if err := m.Run(nativeHorizonUS); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if retuneErr != nil {
		t.Fatal(retuneErr)
	}
	// ~55 ms of run left after the retune at 500 µs over two components:
	// well over a hundred samples if the wake worked, at most a handful
	// (the wind-down tick) if the sampler slept out the old period.
	if got := mon.Samples(); got < 20 {
		t.Fatalf("samples after live retune = %d, want ≥ 20 — SetPeriod did not interrupt the wait", got)
	}
	if got, want := windowedSamples(mon.Windows()), mon.Samples(); got != want {
		t.Fatalf("windowed samples = %d, accepted = %d", got, want)
	}
}

// TestNativeControlChurnExactAccounting hammers the control surface —
// Pause, Resume, SetPeriod retunes — while the application runs on the
// wall-clock platform, then checks the invariant the conformance harness
// relies on: accepted samples equal windowed samples, exactly, no matter
// how the controls interleaved with the samplers and the pump.
func TestNativeControlChurnExactAccounting(t *testing.T) {
	m, a := platform.MustGet("native").New("control-churn")
	prod := a.MustNewComponent("prod", func(ctx *core.Ctx) {
		for i := 0; i < 250; i++ {
			ctx.SleepUS(200)
			ctx.Send("out", i, 512)
		}
	}).MustAddRequired("out")
	cons := a.MustNewComponent("cons", func(ctx *core.Ctx) {
		for {
			if _, ok := ctx.Receive("in"); !ok {
				return
			}
		}
	}).MustAddProvided("in", 1<<16)
	a.MustConnect(prod, "out", cons, "in")
	mon, err := monitor.New(a, monitor.Config{
		Levels:   []monitor.LevelPeriod{{Level: core.LevelApplication, PeriodUS: 100}},
		WindowUS: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	churnDone := make(chan error, 1)
	go func() {
		periods := []int64{300, 100, 700, 100}
		for i := 0; i < 8; i++ {
			mon.Pause()
			time.Sleep(time.Millisecond)
			mon.Resume()
			if err := mon.SetPeriod(core.LevelApplication, periods[i%len(periods)]); err != nil {
				churnDone <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		churnDone <- nil
	}()
	if err := m.Run(nativeHorizonUS); err != nil {
		t.Fatal(err)
	}
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}
	if mon.Paused() {
		t.Fatal("monitor left paused after churn")
	}
	if mon.Samples() == 0 {
		t.Fatal("no samples accepted across the churn")
	}
	if got, want := windowedSamples(mon.Windows()), mon.Samples(); got != want {
		t.Fatalf("windowed samples = %d, accepted = %d; control churn broke exact accounting", got, want)
	}
}

// TestMonitorShardsDefaultClampsToComponents: with no explicit RingShards
// the monitor spreads the ring across min(GOMAXPROCS, components) SPSC
// shards — never more shards than components, since samples shard by
// component index.
func TestMonitorShardsDefaultClampsToComponents(t *testing.T) {
	a, _ := buildPipelineApp(t, 1, 0) // two components
	mon, err := monitor.New(a, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Ring().Shards(); got > 2 || got < 1 {
		t.Fatalf("default ring shards = %d, want within [1, 2] for a 2-component app", got)
	}
}
