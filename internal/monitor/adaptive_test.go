package monitor

import (
	"runtime"
	"testing"
	"time"
)

// TestGovernPeriodLaw pins the controller law: the effective period is the
// smallest period ≥ base whose duty cycle fits the budget, capped at
// maxBackoffFactor×base, and with the controller disabled (zero budget) it
// is exactly the base.
func TestGovernPeriodLaw(t *testing.T) {
	cases := []struct {
		name   string
		ewmaNs int64
		baseUS int64
		budget float64
		want   int64
	}{
		{"zero budget disables", 1_000_000_000, 1000, 0, 1000},
		{"negative budget disables", 1_000_000_000, 1000, -3, 1000},
		{"cheap ticks keep base", 1000, 1000, 1.0, 1000},
		{"boundary lands on base", 10_000, 1000, 1.0, 1000},
		{"10x over budget backs off 10x", 100_000, 1000, 1.0, 10_000},
		{"tighter budget backs off further", 100_000, 1000, 0.1, 100_000},
		{"looser budget backs off less", 100_000, 1000, 10, 1000},
		{"runaway cost hits the cap", 1e15, 1000, 1.0, 1000 * maxBackoffFactor},
		{"zero cost keeps base", 0, 250, 0.5, 250},
	}
	for _, c := range cases {
		if got := governPeriodUS(c.ewmaNs, c.baseUS, c.budget); got != c.want {
			t.Errorf("%s: governPeriodUS(%d, %d, %g) = %d, want %d",
				c.name, c.ewmaNs, c.baseUS, c.budget, got, c.want)
		}
	}
	// The law's whole point, checked symbolically: at the governed period a
	// tick costing the EWMA spends exactly the budgeted share of host time.
	eff := governPeriodUS(100_000, 1000, 1.0)
	if duty := float64(100_000) / (float64(eff) * 1000) * 100; duty > 1.0001 {
		t.Errorf("governed duty cycle %.3f%% exceeds the 1%% budget", duty)
	}
}

// TestObserveTickCostBackoffAndRecovery drives the EWMA controller the way
// the sampler flow does: sustained expensive ticks must back the effective
// period off the base, and once ticks get cheap again the period must
// recover all the way back to the configured base — the adaptive-sampling
// contract, deterministic because the tick costs are injected.
func TestObserveTickCostBackoffAndRecovery(t *testing.T) {
	m := &Monitor{budgetPct: 1}
	st := &samplerState{}
	st.basePeriodUS.Store(1000)
	st.effPeriodUS.Store(1000)

	// Saturating load: every tick costs 800 µs. Under a 1% budget the
	// period must grow to ~80 ms once the EWMA converges.
	for i := 0; i < 64; i++ {
		m.observeTickCost(st, 800*time.Microsecond)
	}
	backedOff := st.effPeriodUS.Load()
	if backedOff < 40_000 {
		t.Fatalf("effective period after sustained load = %dµs, want ≥ 40000 (≈80000)", backedOff)
	}
	if st.basePeriodUS.Load() != 1000 {
		t.Fatalf("base period moved to %d; the controller must only govern the effective period",
			st.basePeriodUS.Load())
	}

	// Load drops: ticks become nearly free. The EWMA decays geometrically
	// (and by at least 1 ns per tick near the floor), so the effective
	// period must return exactly to base.
	for i := 0; i < 256; i++ {
		m.observeTickCost(st, 100*time.Nanosecond)
	}
	if got := st.effPeriodUS.Load(); got != 1000 {
		t.Fatalf("effective period after recovery = %dµs, want base 1000", got)
	}
}

// TestObserveTickCostSmoothsSpikes: one outlier tick (a GC pause) must not
// slam the period to its sustained-load value — the EWMA admits at most
// 1/2^ewmaShift of a single observation.
func TestObserveTickCostSmoothsSpikes(t *testing.T) {
	m := &Monitor{budgetPct: 1}
	st := &samplerState{}
	st.basePeriodUS.Store(1000)
	st.effPeriodUS.Store(1000)
	for i := 0; i < 64; i++ {
		m.observeTickCost(st, 8*time.Microsecond) // comfortably within budget
	}
	m.observeTickCost(st, 8*time.Millisecond) // one spike, 1000× the norm
	spiked := st.effPeriodUS.Load()
	sustained := governPeriodUS(int64(8*time.Millisecond), 1000, 1)
	if spiked >= sustained/2 {
		t.Fatalf("one spike moved the period to %dµs, ≥ half the sustained value %dµs — no smoothing",
			spiked, sustained)
	}
}

// TestRingShardsDefault pins the sharding default: min(GOMAXPROCS, number
// of components), floored at one, with an explicit setting passed through
// untouched (New's component clamp applies later).
func TestRingShardsDefault(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)

	cfg := Config{}
	cfg.setDefaults(3)
	want := procs
	if want > 3 {
		want = 3
	}
	if cfg.RingShards != want {
		t.Errorf("default shards for 3 components = %d, want min(GOMAXPROCS=%d, 3) = %d",
			cfg.RingShards, procs, want)
	}

	big := Config{}
	big.setDefaults(10_000)
	if big.RingShards != procs {
		t.Errorf("default shards for a huge assembly = %d, want GOMAXPROCS = %d",
			big.RingShards, procs)
	}

	unknown := Config{}
	unknown.setDefaults(0) // component count unknown at default time
	if unknown.RingShards != procs {
		t.Errorf("default shards with unknown component count = %d, want GOMAXPROCS = %d",
			unknown.RingShards, procs)
	}

	explicit := Config{RingShards: 7}
	explicit.setDefaults(2)
	if explicit.RingShards != 7 {
		t.Errorf("explicit shard count rewritten to %d, want 7 preserved", explicit.RingShards)
	}
}
