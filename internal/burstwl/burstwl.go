// Package burstwl is the open-loop request/response workload family: a set
// of client components fire requests at a fleet of servers on a bursty
// virtual-time arrival schedule (Poisson, on-off or uniform), each request
// fans out to a subset of the servers, and every server forwards its
// response into one deliberately tight collector inbox. Arrivals are
// open-loop — a client's emission schedule is fixed up front and never
// waits for responses — so offered load is independent of service capacity
// and queueing shows up as real sender backpressure, which the monitor's
// latency histograms observe. The family registers with the workload
// registry as "burst:<seed>" (fully seeded) or "burst:key=val,..."
// (explicit spec), so every binary, sweep and conformance battery can
// drive it exactly as it drives "rand:<seed>".
//
// Every request carries a 64-bit value derived from (seed, client, seq).
// A server applies a server-salted splitmix64 round and forwards the
// result; the collector applies one final fold. The value folded for a
// request therefore depends only on (client, seq, server) — never on
// scheduling or arrival order — so the unit count, checksum and per-edge
// send counts are all computable from the Spec alone.
package burstwl

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Family is the workload-family prefix: workloads resolve as
// "burst:<seed>" or "burst:key=val,...".
const Family = "burst"

// Name returns the registry name of the seeded workload for one seed.
func Name(seed int64) string { return fmt.Sprintf("%s:%d", Family, seed) }

// ReproCommand is the one-line reproduction command for a failing seed.
func ReproCommand(seed int64) string {
	return fmt.Sprintf("embera-bench -exp BURST -seed %d", seed)
}

// Arrival-process modes.
const (
	ModePoisson = "poisson" // exponential inter-arrival gaps
	ModeOnOff   = "onoff"   // back-to-back bursts separated by idle gaps
	ModeUniform = "uniform" // uniform gaps on [0, 2×mean]
)

var modes = []string{ModePoisson, ModeOnOff, ModeUniform}

// Spec is one fully determined burst workload: everything about the
// clients, servers, shapes and schedule except the platform it lands on.
type Spec struct {
	Seed    int64  // schedule/fan-out randomness source
	Clients int    // request-emitting components
	Servers int    // request-serving components
	Fanout  int    // distinct servers each request is sent to
	Reqs    int    // requests per client
	RateHz  int    // mean per-client arrival rate (requests/second)
	Bytes   int    // modelled wire size of requests and responses
	Cap     int    // inbox capacity factor (×Bytes); 1 = tight backpressure
	Cost    int64  // server compute cycles per request
	Mode    string // arrival process: poisson, onoff or uniform
}

// NewSpec derives a full spec from one seed: every dimension comes from a
// seeded PRNG, so two calls — on any platform, in any process — produce
// identical specs.
func NewSpec(seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed*0x6A09E667 + 0x13198A2E03))
	s := &Spec{
		Seed:    seed,
		Clients: 2 + rng.Intn(3), // 2..4
		Servers: 2 + rng.Intn(4), // 2..5
		Reqs:    24 + rng.Intn(37),
		RateHz:  5_000 + rng.Intn(45_001),
		Bytes:   16 + rng.Intn(497),
		Cap:     1 + rng.Intn(4),
		Cost:    500 + int64(rng.Intn(7_500)),
		Mode:    modes[rng.Intn(len(modes))],
	}
	maxFan := s.Servers
	if maxFan > 3 {
		maxFan = 3
	}
	s.Fanout = 1 + rng.Intn(maxFan)
	return s
}

// specKeys is the explicit-form grammar, in canonical order.
var specKeys = []string{"clients", "servers", "fanout", "reqs", "rate", "bytes", "cap", "cost", "mode", "seed"}

// ParseSpec parses the family argument. A bare non-negative integer is the
// seeded form (every dimension PRNG-derived); otherwise the argument is a
// comma-separated key=value list over the explicit grammar, with any
// omitted key taking its default. Out-of-range values (rate=-1, fanout
// beyond the server count, unknown keys, ...) are rejected here, before a
// run starts, so malformed specs surface as uniform usage errors.
func ParseSpec(arg string) (*Spec, error) {
	if seed, err := strconv.ParseInt(arg, 10, 64); err == nil {
		if seed < 0 {
			return nil, fmt.Errorf("burstwl: seed %d must be non-negative", seed)
		}
		return NewSpec(seed), nil
	}
	s := &Spec{ // explicit-form defaults: a small, tail-heavy cell
		Clients: 2, Servers: 3, Fanout: 2, Reqs: 32,
		RateHz: 20_000, Bytes: 64, Cap: 1, Cost: 2_000, Mode: ModePoisson,
	}
	for _, kv := range strings.Split(arg, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("burstwl: %q is not key=value (grammar: %s)", kv, strings.Join(specKeys, ","))
		}
		if k == "mode" {
			s.Mode = v
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("burstwl: %s=%q is not an integer", k, v)
		}
		switch k {
		case "clients":
			s.Clients = int(n)
		case "servers":
			s.Servers = int(n)
		case "fanout":
			s.Fanout = int(n)
		case "reqs":
			s.Reqs = int(n)
		case "rate":
			s.RateHz = int(n)
		case "bytes":
			s.Bytes = int(n)
		case "cap":
			s.Cap = int(n)
		case "cost":
			s.Cost = n
		case "seed":
			s.Seed = n
		default:
			return nil, fmt.Errorf("burstwl: unknown key %q (grammar: %s)", k, strings.Join(specKeys, ","))
		}
	}
	return s, s.Validate()
}

// Validate rejects specs that cannot run or would run unboundedly.
func (s *Spec) Validate() error {
	check := func(name string, got, lo, hi int64) error {
		if got < lo || got > hi {
			return fmt.Errorf("burstwl: %s=%d out of range [%d, %d]", name, got, lo, hi)
		}
		return nil
	}
	for _, err := range []error{
		check("clients", int64(s.Clients), 1, 64),
		check("servers", int64(s.Servers), 1, 64),
		check("fanout", int64(s.Fanout), 1, int64(s.Servers)),
		check("reqs", int64(s.Reqs), 1, 1<<16),
		check("rate", int64(s.RateHz), 1, 1_000_000_000),
		check("bytes", int64(s.Bytes), 1, 1<<20),
		check("cap", int64(s.Cap), 1, 1<<10),
		check("cost", s.Cost, 0, 1<<24),
		check("seed", s.Seed, 0, 1<<62),
	} {
		if err != nil {
			return err
		}
	}
	ok := false
	for _, m := range modes {
		ok = ok || s.Mode == m
	}
	if !ok {
		return fmt.Errorf("burstwl: mode %q is not one of %s", s.Mode, strings.Join(modes, "/"))
	}
	return nil
}

// Arg renders the spec back into a canonical family argument that
// ParseSpec reconstructs bit-identically — the registry name cluster
// workers rebuild the workload from.
func (s *Spec) Arg() string {
	return fmt.Sprintf("clients=%d,servers=%d,fanout=%d,reqs=%d,rate=%d,bytes=%d,cap=%d,cost=%d,mode=%s,seed=%d",
		s.Clients, s.Servers, s.Fanout, s.Reqs, s.RateHz, s.Bytes, s.Cap, s.Cost, s.Mode, s.Seed)
}

// mix is the salted splitmix64 round shared by servers and the collector.
func mix(v, salt uint64) uint64 {
	v += 0x9E3779B97F4A7C15 * (salt + 1)
	v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9
	v = (v ^ (v >> 27)) * 0x94D049BB133111EB
	return v ^ (v >> 31)
}

// collectorSalt parameterizes the collector's final fold.
const collectorSalt = 0xA54FF53A

// reqValue derives the raw value client c emits for its seq-th request.
func reqValue(seed int64, c, seq int) uint64 {
	return mix(uint64(seed)+uint64(seq), uint64(c)*0x9E3779B1+0x85EBCA6B)
}

// serverSalt parameterizes server s's response transformation.
func serverSalt(s int) uint64 { return mix(uint64(s)+1, 0xC2B2AE35) }

// Schedule is one client's precomputed open-loop emission plan: GapsUS[q]
// is the virtual-time gap slept before request q is emitted, Targets[q]
// the distinct servers it fans out to. The plan is a pure function of
// (Spec, client), so every platform replays the identical offered load.
type Schedule struct {
	GapsUS  []int64
	Targets [][]int
}

// ClientSchedule derives client c's schedule.
func (s *Spec) ClientSchedule(c int) Schedule {
	gapRNG := rand.New(rand.NewSource(s.Seed*0x9E3779B9 + int64(c)*0x85EBCA77 + 1))
	tgtRNG := rand.New(rand.NewSource(s.Seed*0xC2B2AE3D + int64(c)*0x27D4EB2F + 2))
	meanGap := 1_000_000 / float64(s.RateHz)

	sched := Schedule{GapsUS: make([]int64, s.Reqs), Targets: make([][]int, s.Reqs)}
	inBurst := 0
	for q := 0; q < s.Reqs; q++ {
		var gap float64
		switch s.Mode {
		case ModePoisson:
			gap = gapRNG.ExpFloat64() * meanGap
		case ModeUniform:
			gap = gapRNG.Float64() * 2 * meanGap
		case ModeOnOff:
			// Back-to-back inside a burst; the idle gap between bursts
			// repays the skipped gaps so the mean rate stays RateHz.
			if inBurst == 0 {
				burst := 1 + gapRNG.Intn(8)
				if burst > s.Reqs-q {
					burst = s.Reqs - q
				}
				inBurst = burst
				gap = gapRNG.ExpFloat64() * meanGap * float64(burst)
			}
			inBurst--
		}
		sched.GapsUS[q] = int64(gap)
		perm := tgtRNG.Perm(s.Servers)[:s.Fanout]
		sort.Ints(perm)
		sched.Targets[q] = perm
	}
	return sched
}

// Expected returns the closed-form outcome of a correct run: the number
// of responses folded at the collector and their order-independent
// checksum.
func (s *Spec) Expected() (units int, checksum uint64) {
	for c := 0; c < s.Clients; c++ {
		sched := s.ClientSchedule(c)
		for q := 0; q < s.Reqs; q++ {
			v := reqValue(s.Seed, c, q)
			for _, srv := range sched.Targets[q] {
				units++
				checksum += mix(mix(v, serverSalt(srv)), collectorSalt)
			}
		}
	}
	return units, checksum
}

// EdgeOps returns the closed-form per-edge send counts: toServer[c][s] is
// how many requests client c sends server s; toCollector[s] how many
// responses server s forwards.
func (s *Spec) EdgeOps() (toServer [][]uint64, toCollector []uint64) {
	toServer = make([][]uint64, s.Clients)
	toCollector = make([]uint64, s.Servers)
	for c := 0; c < s.Clients; c++ {
		toServer[c] = make([]uint64, s.Servers)
		sched := s.ClientSchedule(c)
		for _, targets := range sched.Targets {
			for _, srv := range targets {
				toServer[c][srv]++
				toCollector[srv]++
			}
		}
	}
	return toServer, toCollector
}

// TotalSends returns the total send operations a correct run performs.
func (s *Spec) TotalSends() int {
	// Every request send is answered by exactly one collector-bound send.
	return 2 * s.Clients * s.Reqs * s.Fanout
}

// String summarizes the workload shape.
func (s *Spec) String() string {
	return fmt.Sprintf("seed %d: %d clients × %d reqs → fanout %d of %d servers → collector (%s @ %d req/s, %dB, cap ×%d)",
		s.Seed, s.Clients, s.Reqs, s.Fanout, s.Servers, s.Mode, s.RateHz, s.Bytes, s.Cap)
}
