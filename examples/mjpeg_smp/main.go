// mjpeg_smp runs the paper's §4 experiment: the componentized Motion-JPEG
// decoder (Fetch -> 3x IDCT -> Reorder, Figure 3) on the simulated 16-core
// SMP Linux platform, observed through the EMBera observation interfaces.
//
// It prints the per-component OS-level view (Table 1), the application-level
// communication counters (Table 2) and IDCT_1's structure (Figure 5).
//
// Run: go run ./examples/mjpeg_smp [-frames N]
package main

import (
	"flag"
	"fmt"
	"log"

	"embera/internal/core"
	"embera/internal/exp"
	"embera/internal/mjpeg"
	"embera/internal/mjpegapp"
	"embera/internal/platform"
	"embera/internal/sim"
)

func main() {
	frames := flag.Int("frames", 60, "number of MJPEG frames to decode (paper: 578 and 3000)")
	flag.Parse()

	stream, err := mjpeg.SynthStream(exp.RefW, exp.RefH, *frames,
		mjpeg.EncodeOptions{Quality: exp.RefQuality})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d frames of %dx%d MJPEG (%d bytes)\n\n",
		*frames, exp.RefW, exp.RefH, len(stream))

	p := platform.MustGet("smp")
	m, a := p.New("mjpeg")

	decoded := 0
	cfg := mjpegapp.ConfigFor(stream, p.Topology())
	cfg.OnFrame = func(i int, img *mjpeg.Image) { decoded++ }
	app, err := mjpegapp.Build(a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	obs, err := a.AttachObserver()
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Start(); err != nil {
		log.Fatal(err)
	}

	a.SpawnDriver("report", func(f core.Flow) {
		a.AwaitQuiescence(f)
		reports, err := obs.QueryAll(f, core.LevelAll)
		if err != nil {
			log.Fatal(err)
		}
		order := []string{"Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"}

		fmt.Println("OS level (cf. Table 1):")
		fmt.Printf("  %-10s %14s %10s\n", "Component", "Time (µs)", "Mem (kB)")
		for _, name := range order {
			r := reports[name]
			fmt.Printf("  %-10s %14d %10d\n", name, r.OS.ExecTimeUS, r.OS.MemBytes/1024)
		}

		fmt.Println("\nApplication level (cf. Table 2):")
		fmt.Printf("  %-10s %10s %10s\n", "Component", "send", "receive")
		for _, name := range order {
			r := reports[name]
			fmt.Printf("  %-10s %10d %10d\n", name, r.App.SendOps, r.App.RecvOps)
		}

		fmt.Println("\nStructure (cf. Figure 5):")
		fmt.Print(core.FormatInterfaces("IDCT_1", reports["IDCT_1"].App.Interfaces))
	})

	if err := m.Run(int64(100 * 3600 * sim.Second / sim.Microsecond)); err != nil {
		log.Fatal(err)
	}
	if !a.Done() {
		log.Fatal("application did not finish")
	}
	fmt.Printf("\ndecoded %d/%d frames; virtual makespan %s\n",
		decoded, *frames, sim.Duration(m.NowUS())*sim.Microsecond)
	_ = app
}
