package sim

import "fmt"

// State describes the life-cycle phase of a process.
type State int

// Process states.
const (
	StateNew     State = iota // spawned, start event not yet processed
	StateRunning              // currently executing (at most one process)
	StateParked               // blocked on a synchronization object
	StateReady                // woken, resume event scheduled
	StateDone                 // function returned or killed
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateReady:
		return "ready"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// procKilled is the panic payload used by Kill to unwind a process stack.
var procKilled = &struct{ reason string }{"killed"}

// Proc is a cooperative simulated process. All methods must be called from
// the process's own function (the one passed to Spawn), never from another
// goroutine: the kernel guarantees only one process runs at a time, and the
// synchronization objects rely on that.
type Proc struct {
	k           *Kernel
	name        string
	resume      chan struct{}
	state       State
	parkSeq     uint64 // incremented on every park; guards against stale wakes
	waitReason  string
	panicked    error
	doneWaiters []*Proc
	killed      bool
	daemon      bool
}

// SetDaemon marks the process as a background service: a parked daemon does
// not count as a deadlock when the event queue drains (it simply never runs
// again). Observation service loops use this.
func (p *Proc) SetDaemon(v bool) { p.daemon = v }

// Daemon reports whether the process is marked as a daemon.
func (p *Proc) Daemon() bool { return p.daemon }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// State returns the current life-cycle state.
func (p *Proc) State() State { return p.state }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park suspends the process until another event wakes it. reason is reported
// by deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.parkSeq++
	p.state = StateParked
	p.waitReason = reason
	if p.k.tracer != nil {
		p.k.trace("park %s: %s", p.name, reason)
	}
	p.k.yield <- struct{}{}
	<-p.resume
	p.waitReason = ""
	if p.killed {
		panic(procKilled)
	}
}

// Advance consumes d of virtual time: the process is suspended and resumes
// once the kernel clock has moved d forward. It models computation or any
// other busy interval. Negative durations panic.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q advancing by negative duration %d", p.name, d))
	}
	if d == 0 {
		p.YieldTurn()
		return
	}
	p.k.atWake(d, p)
	p.parkSeq++
	p.state = StateParked
	p.waitReason = "advance"
	p.k.yield <- struct{}{}
	<-p.resume
	p.waitReason = ""
	if p.killed {
		panic(procKilled)
	}
}

// YieldTurn relinquishes the processor without advancing time; the process
// resumes after all other events already scheduled for the current instant.
func (p *Proc) YieldTurn() {
	p.k.atWake(0, p)
	p.parkSeq++
	p.state = StateParked
	p.waitReason = "yield"
	p.k.yield <- struct{}{}
	<-p.resume
	p.waitReason = ""
	if p.killed {
		panic(procKilled)
	}
}

// Join blocks until other terminates. Joining a terminated process returns
// immediately; a process cannot join itself.
func (p *Proc) Join(other *Proc) {
	if other == p {
		panic("sim: process joining itself")
	}
	if other.state == StateDone {
		return
	}
	other.doneWaiters = append(other.doneWaiters, p)
	p.park("join " + other.name)
}

// Kill forcibly terminates target the next time it would resume. It is safe
// to call from any process or from kernel context; killing an already-done
// process is a no-op.
func (k *Kernel) Kill(target *Proc) {
	if target.state == StateDone || target.killed {
		return
	}
	target.killed = true
	if target.state == StateParked {
		k.wake(target)
	}
}
