// Package core implements EMBera, the paper's component-based observation
// model for MPSoC applications (§3).
//
// An EMBera application is a set of interconnected components. A component
// is "a software entity with a well-defined functionality" and "an active
// entity [with] its own execution flow". Functionality is exposed through
// provided interfaces and consumed through required interfaces; connections
// link a required interface to a provided interface, and communication is a
// "simple one-way asynchronous message-oriented mechanism" with send and
// receive primitives.
//
// Every component additionally carries the observation interface of §3.3: a
// provided/required interface pair, created by default, through which an
// observer component obtains information about three software levels — the
// operating system (execution time, memory), the middleware (send/receive
// timing) and the application (component structure, communication counters)
// — without any change to the application code.
//
// The model is platform-independent: a Binding (see binding.go) maps
// components onto a concrete platform. This repository ships two bindings,
// mirroring the paper's two implementations: internal/smpbind (Linux process
// + POSIX threads + FIFO mailboxes on the 16-core NUMA machine) and
// internal/os21bind (OS21 tasks + EMBX distributed objects on the STi7200).
package core

// Message is the unit of communication between components. Payload carries
// an arbitrary application value; Bytes is the modelled wire size, which the
// platform binding charges transfer costs for. Keeping the two separate lets
// the simulated platforms move "200 kB" in virtual time without the host
// allocating 200 kB per message.
type Message struct {
	// Payload is the application data (opaque to the framework).
	Payload any
	// Bytes is the modelled message size on the wire.
	Bytes int
	// From is the sending component's name; filled in by the framework.
	From string
}

// EventKind classifies trace events emitted by the instrumented runtime
// (the event-trace support announced as future work in §6 and implemented
// by internal/trace).
type EventKind uint8

// Trace event kinds.
const (
	EvStart   EventKind = iota + 1 // component execution began
	EvStop                         // component execution finished
	EvSend                         // send primitive completed
	EvReceive                      // receive primitive completed
	EvCompute                      // compute interval charged
	EvObserve                      // observation request served
)

func (k EventKind) String() string {
	switch k {
	case EvStart:
		return "start"
	case EvStop:
		return "stop"
	case EvSend:
		return "send"
	case EvReceive:
		return "receive"
	case EvCompute:
		return "compute"
	case EvObserve:
		return "observe"
	default:
		return "unknown"
	}
}

// Event is one trace record. TimeUS is the platform-local timestamp in
// microseconds (the same clock the middleware instrumentation uses).
type Event struct {
	TimeUS    int64
	Kind      EventKind
	Component string
	Interface string
	Bytes     int
	DurUS     int64
}

// EventSink receives trace events. Implementations must be cheap: Emit is
// called from inside the send/receive instrumentation.
type EventSink interface {
	Emit(e Event)
}
