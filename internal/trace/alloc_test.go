package trace

import (
	"testing"

	"embera/internal/core"
)

// TestEmitZeroAlloc locks the recorder's per-event cost at zero
// allocations: the ring is preallocated at construction and Emit only ever
// copies into it.
func TestEmitZeroAlloc(t *testing.T) {
	r := NewRecorder(1024)
	e := core.Event{TimeUS: 1, Kind: core.EvSend, Component: "Fetch",
		Interface: "out", Bytes: 4096, DurUS: 13}
	if allocs := testing.AllocsPerRun(1000, func() { r.Emit(e) }); allocs != 0 {
		t.Fatalf("Emit allocates %v per event, want 0", allocs)
	}
}

// TestEventsIntoReusesBuffer verifies the snapshot path reuses caller
// capacity and matches Events exactly, both before and after wrap-around.
func TestEventsIntoReusesBuffer(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 13; i++ { // wraps: capacity 8, 13 emitted
		r.Emit(core.Event{TimeUS: int64(i), Kind: core.EvSend, Component: "c"})
	}
	want := r.Events()
	scratch := make([]core.Event, 0, 16)
	got := r.EventsInto(scratch[:0])
	if len(got) != len(want) {
		t.Fatalf("EventsInto returned %d events, Events %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("EventsInto did not reuse the caller's buffer")
	}
	if allocs := testing.AllocsPerRun(100, func() { got = r.EventsInto(got[:0]) }); allocs != 0 {
		t.Fatalf("warm EventsInto allocates %v per snapshot, want 0", allocs)
	}
}

// TestRecorderReset verifies Reset clears events and counters while keeping
// the ring usable for a fresh run.
func TestRecorderReset(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Emit(core.Event{TimeUS: int64(i), Kind: core.EvSend, Component: "c"})
	}
	r.Reset()
	if got := r.Len(); got != 0 {
		t.Fatalf("Len after Reset = %d, want 0", got)
	}
	if total, dropped := r.Stats(); total != 0 || dropped != 0 {
		t.Fatalf("Stats after Reset = %d/%d, want 0/0", total, dropped)
	}
	r.Emit(core.Event{TimeUS: 99, Kind: core.EvReceive, Component: "d"})
	evs := r.Events()
	if len(evs) != 1 || evs[0].TimeUS != 99 {
		t.Fatalf("post-Reset events = %+v, want the single new event", evs)
	}
}
