package trace

import "embera/internal/core"

// Event selection — the paper's §6 open question "how to select the events
// to be observed". A Filter wraps any EventSink and forwards only matching
// events, so selection happens at collection time (keeping ring-buffer
// pressure down) rather than at analysis time.

// Predicate decides whether an event is collected.
type Predicate func(core.Event) bool

// Filter is a selective EventSink.
type Filter struct {
	next core.EventSink
	pred Predicate

	matched, rejected uint64
}

// NewFilter wraps next with a predicate. A nil predicate matches everything.
func NewFilter(next core.EventSink, pred Predicate) *Filter {
	if next == nil {
		panic("trace: filter needs a downstream sink")
	}
	if pred == nil {
		pred = func(core.Event) bool { return true }
	}
	return &Filter{next: next, pred: pred}
}

// Emit implements core.EventSink.
func (f *Filter) Emit(e core.Event) {
	if f.pred(e) {
		f.matched++
		f.next.Emit(e)
		return
	}
	f.rejected++
}

// Stats reports how many events matched and how many were rejected.
func (f *Filter) Stats() (matched, rejected uint64) { return f.matched, f.rejected }

// Composable predicates.

// ByKind matches any of the given event kinds.
func ByKind(kinds ...core.EventKind) Predicate {
	set := map[core.EventKind]bool{}
	for _, k := range kinds {
		set[k] = true
	}
	return func(e core.Event) bool { return set[e.Kind] }
}

// ByComponent matches any of the given component names.
func ByComponent(names ...string) Predicate {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(e core.Event) bool { return set[e.Component] }
}

// ByInterface matches any of the given interface names.
func ByInterface(names ...string) Predicate {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(e core.Event) bool { return set[e.Interface] }
}

// MinBytes matches events moving at least n bytes.
func MinBytes(n int) Predicate {
	return func(e core.Event) bool { return e.Bytes >= n }
}

// And matches when every predicate matches.
func And(ps ...Predicate) Predicate {
	return func(e core.Event) bool {
		for _, p := range ps {
			if !p(e) {
				return false
			}
		}
		return true
	}
}

// Or matches when any predicate matches.
func Or(ps ...Predicate) Predicate {
	return func(e core.Event) bool {
		for _, p := range ps {
			if p(e) {
				return true
			}
		}
		return false
	}
}

// Not inverts a predicate.
func Not(p Predicate) Predicate {
	return func(e core.Event) bool { return !p(e) }
}

// Tee duplicates events to several sinks (e.g. a full ring plus a filtered
// one).
type Tee struct{ sinks []core.EventSink }

// NewTee builds a fan-out sink.
func NewTee(sinks ...core.EventSink) *Tee { return &Tee{sinks: sinks} }

// Emit implements core.EventSink.
func (t *Tee) Emit(e core.Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}
