// Quickstart: a two-component EMBera application with an observer.
//
// A producer component streams messages to a consumer over a connected
// required->provided interface pair; an observer queries all three
// observation levels while the application runs and after it finishes —
// without either body containing any observation code.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"embera/internal/core"
	"embera/internal/platform"
	"embera/internal/sim"
)

func main() {
	// Platform: the paper's 16-core NUMA SMP machine under a deterministic
	// virtual clock, resolved through the platform registry. (Swap "smp"
	// for "native" to run the same assembly on real goroutines.)
	m, app := platform.MustGet("smp").New("quickstart")

	// Components: creation + interface declaration (the control interface).
	producer := app.MustNewComponent("producer", func(ctx *core.Ctx) {
		for i := 0; i < 100; i++ {
			ctx.Compute(50_000) // some per-item work
			ctx.Send("out", fmt.Sprintf("item-%d", i), 4096)
		}
	}).MustAddRequired("out")

	consumer := app.MustNewComponent("consumer", func(ctx *core.Ctx) {
		count := 0
		for {
			_, ok := ctx.Receive("in")
			if !ok {
				fmt.Printf("consumer: drained after %d messages\n", count)
				return
			}
			count++
			ctx.Compute(30_000)
		}
	}).MustAddProvided("in", 64*1024)

	// Connection: link the required interface to the provided one.
	app.MustConnect(producer, "out", consumer, "in")

	// Observation: attach the observer component and drive it from a
	// harness flow — mid-run and post-run queries.
	obs, err := app.AttachObserver()
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Start(); err != nil {
		log.Fatal(err)
	}
	app.SpawnDriver("observer-driver", func(f core.Flow) {
		f.SleepUS(2000) // let the pipeline spin up
		mid, err := obs.QueryAll(f, core.LevelApplication)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mid-run:  producer sent %d, consumer received %d\n",
			mid["producer"].App.SendOps, mid["consumer"].App.RecvOps)

		app.AwaitQuiescence(f)
		final, err := obs.QueryAll(f, core.LevelAll)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range []string{"producer", "consumer"} {
			r := final[name]
			fmt.Printf("final:    %-9s exec=%6dµs mem=%dkB send=%d recv=%d\n",
				name, r.OS.ExecTimeUS, r.OS.MemBytes/1024, r.App.SendOps, r.App.RecvOps)
		}
		fmt.Println()
		fmt.Print(core.FormatInterfaces("consumer", final["consumer"].App.Interfaces))
		fmt.Println()
		fmt.Print(core.FormatMWReport("producer", final["producer"].Middleware))
	})

	if err := m.Run(int64(60 * sim.Second / sim.Microsecond)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual makespan: %s\n", sim.Duration(m.NowUS())*sim.Microsecond)
}
