// Package svc provides the framework-level service flows and queues shared
// by both EMBera platform bindings: lightweight execution contexts for
// observation services and drivers, plus zero-cost mailboxes for observation
// traffic. Service flows consume no modelled CPU and their memory is not
// charged to any component — the paper's observation functions are part of
// the component implementation, not extra OS threads/tasks.
package svc

import (
	"embera/internal/core"
	"embera/internal/sim"
)

// Flow is a service execution flow: Compute is free (observation logic is
// not part of the modelled application work), SleepUS advances virtual time.
type Flow struct {
	P *sim.Proc
}

// Compute is a no-op on service flows.
func (f *Flow) Compute(cycles int64) {}

// SleepUS advances virtual time by us microseconds.
func (f *Flow) SleepUS(us int64) {
	if us <= 0 {
		f.P.YieldTurn()
		return
	}
	f.P.Advance(sim.Duration(us) * sim.Microsecond)
}

// Proc exposes the underlying simulation process; bindings use it to route
// mailbox blocking for flows of any concrete type.
func (f *Flow) Proc() *sim.Proc { return f.P }

// ProcHolder is implemented by every flow type of the simulated bindings —
// component flows and service flows alike — so queues can park whichever
// flow calls them.
type ProcHolder interface{ Proc() *sim.Proc }

// Spawn starts fn as a daemon service flow on k.
func Spawn(k *sim.Kernel, name string, fn func(f *Flow)) {
	p := k.Spawn(name, func(p *sim.Proc) {
		fn(&Flow{P: p})
	})
	p.SetDaemon(true)
}

// Queue is a zero-cost unbounded mailbox for observation traffic. It
// satisfies core.Mailbox. Sends never block and charge no platform cost.
type Queue struct {
	q *sim.Queue[core.Message]
}

// NewQueue creates a service queue on kernel k.
func NewQueue(k *sim.Kernel, name string) *Queue {
	return &Queue{q: sim.NewQueue[core.Message](k, name, 0)}
}

// Send enqueues m; it returns false if the queue is closed.
func (s *Queue) Send(sender core.Flow, m core.Message) bool {
	if s.q.Closed() {
		return false
	}
	return s.q.TryPut(m) // unbounded: always succeeds when open
}

// Receive blocks the calling flow until a message arrives; ok=false once
// closed and drained.
func (s *Queue) Receive(receiver core.Flow) (core.Message, bool) {
	h, ok := receiver.(ProcHolder)
	if !ok {
		panic("svc: receive from a flow without a simulation process")
	}
	return s.q.Get(h.Proc())
}

// Close closes the queue.
func (s *Queue) Close() { s.q.Close() }

// BufBytes reports 0: service queues are unaccounted.
func (s *Queue) BufBytes() int64 { return 0 }

// Depth returns the number of queued messages.
func (s *Queue) Depth() int { return s.q.Len() }

var _ core.Mailbox = (*Queue)(nil)
