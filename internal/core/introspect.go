package core

import (
	"fmt"
	"strings"
)

// FormatInterfaces renders a component's interface listing in the exact
// layout of the paper's Figure 5:
//
//	Interfaces component [IDCT_1]
//	----------------------------
//	[Interface]       [Type]
//	introspection     provided
//	_fetchIdct1       provided
//	introspection     required
//	idctReorder       required
func FormatInterfaces(name string, ifaces []IfaceInfo) string {
	var b strings.Builder
	header := fmt.Sprintf("Interfaces component [%s]", name)
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, strings.Repeat("-", len(header)))
	width := len("[Interface]")
	for _, i := range ifaces {
		if len(i.Name) > width {
			width = len(i.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %s\n", width, "[Interface]", "[Type]")
	for _, i := range ifaces {
		fmt.Fprintf(&b, "%-*s  %s\n", width, i.Name, i.Type)
	}
	return b.String()
}

// FormatMWReport renders middleware statistics as a small table.
func FormatMWReport(name string, mw *MWReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Middleware report [%s]\n", name)
	for _, dir := range []struct {
		label string
		m     map[string]IfaceStats
	}{{"send", mw.Send}, {"recv", mw.Recv}} {
		for _, iface := range sortedKeys(dir.m) {
			s := dir.m[iface]
			fmt.Fprintf(&b, "  %s %-16s ops=%-8d bytes=%-10d mean=%.1fµs max=%dµs\n",
				dir.label, iface, s.Ops, s.Bytes, s.MeanUS(), s.MaxUS)
		}
	}
	return b.String()
}
