package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrClosedMailbox reports an attempt to rewire a producer onto a provided
// interface whose mailbox has already closed because it lost its last
// producer. A closed mailbox never reopens: installing it as a send target
// would make the producer's next send vanish.
var ErrClosedMailbox = errors.New("core: provided interface's mailbox is closed")

// ObsIfaceName is the reserved name of the default observation interface
// pair every component carries (Figure 5 lists it as "introspection").
const ObsIfaceName = "introspection"

// State is a component's life-cycle phase, managed through the control
// interface (§3.1: creation, interconnection, launching and termination).
type State int

// Component states.
const (
	StateCreated State = iota
	StateStarted
	StateDone
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateStarted:
		return "started"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Body is a component's functional code. It communicates exclusively through
// the Ctx — the body contains no observation logic, which is the point of
// the model: "the componentized MJPEG application can be observed without
// modifying its code".
type Body func(ctx *Ctx)

// App is an EMBera application: a named set of components plus their
// connections, deployed onto one platform binding. Mirroring the paper, "the
// deployment of any EMBera application is carried out by explicitly invoking
// control functions into the main application function" — those control
// functions are NewComponent, AddProvided/AddRequired, Connect and Start.
type App struct {
	Name    string
	binding Binding

	comps map[string]*Component
	order []*Component

	composites     map[string]*Composite
	compositeOrder []*Composite

	observer *Observer
	sink     EventSink

	// started is atomic because Terminate (reachable from any goroutine
	// through a platform Interrupt) checks it while Start may still be
	// running on the launching goroutine.
	started atomic.Bool
	// launched flips once Start has finished materializing mailboxes and
	// spawning flows — the point from which live reconfiguration is safe.
	launched atomic.Bool

	// live counts components that have not yet reached StateDone; quiesced
	// is closed when the count hits zero. Platforms with real concurrency
	// (and the monitor's wall-clock flows) wait on the channel instead of
	// polling Done, so wind-down latency is event-driven, not a sleep
	// period.
	live     atomic.Int32
	quiesced chan struct{}

	// connMu guards the connection reference counts after Start
	// (ProvidedIface.conns/senders) and serializes Reconnect against
	// component termination. The required-interface target pointer itself
	// is atomic (see RequiredIface) so sends never touch this lock. On
	// platforms with real concurrency a terminating component decrements
	// producer counts while an observation service lists interfaces; the
	// simulated platforms never contend on it.
	connMu sync.Mutex
}

// NewApp creates an application on the given platform binding.
func NewApp(name string, b Binding) *App {
	return &App{
		Name: name, binding: b,
		comps:    make(map[string]*Component),
		quiesced: make(chan struct{}),
	}
}

// Binding returns the platform binding.
func (a *App) Binding() Binding { return a.binding }

// SetEventSink attaches a trace sink receiving the instrumentation events
// (may be nil to disable). Must be called before Start.
func (a *App) SetEventSink(s EventSink) { a.sink = s }

// NewComponent creates a component with the given functional body. Names
// must be unique within the application.
func (a *App) NewComponent(name string, body Body) (*Component, error) {
	if a.started.Load() {
		return nil, fmt.Errorf("core: app %q already started", a.Name)
	}
	if name == "" || body == nil {
		return nil, fmt.Errorf("core: component needs a name and a body")
	}
	if _, dup := a.comps[name]; dup {
		return nil, fmt.Errorf("core: duplicate component %q", name)
	}
	c := &Component{
		name:      name,
		app:       a,
		body:      body,
		provided:  make(map[string]*ProvidedIface),
		required:  make(map[string]*RequiredIface),
		placement: -1,
		stats:     newStats(),
	}
	a.comps[name] = c
	a.order = append(a.order, c)
	return c, nil
}

// MustNewComponent is NewComponent that panics on error, for assembly code
// with static names.
func (a *App) MustNewComponent(name string, body Body) *Component {
	c, err := a.NewComponent(name, body)
	if err != nil {
		panic(err)
	}
	return c
}

// Component looks a component up by name.
func (a *App) Component(name string) (*Component, bool) {
	c, ok := a.comps[name]
	return c, ok
}

// Components returns all components in creation order.
func (a *App) Components() []*Component {
	return append([]*Component(nil), a.order...)
}

// Connect links from's required interface req to to's provided interface
// prov — "connections between components are established by linking required
// and provided interfaces".
func (a *App) Connect(from *Component, req string, to *Component, prov string) error {
	if a.started.Load() {
		return fmt.Errorf("core: app %q already started", a.Name)
	}
	if from == nil || to == nil {
		return fmt.Errorf("core: connect with nil component")
	}
	ri, ok := from.required[req]
	if !ok {
		return fmt.Errorf("core: %s has no required interface %q", from.name, req)
	}
	if ri.target.Load() != nil {
		return fmt.Errorf("core: %s.%s is already connected", from.name, req)
	}
	pi, ok := to.provided[prov]
	if !ok {
		return fmt.Errorf("core: %s has no provided interface %q", to.name, prov)
	}
	if from == to {
		return fmt.Errorf("core: %s connecting to itself", from.name)
	}
	ri.target.Store(pi)
	pi.conns++
	return nil
}

// MustConnect is Connect that panics on error.
func (a *App) MustConnect(from *Component, req string, to *Component, prov string) {
	if err := a.Connect(from, req, to, prov); err != nil {
		panic(err)
	}
}

// Reconnect atomically rewires a running component's required interface to a
// different provided interface — the dynamic reconfiguration the paper's
// introspection is designed to observe ("valuable information for
// applications which configuration changes dynamically", §4.4). The
// component's next send goes to the new target; an in-flight send completes
// to the old one. If the old target loses its last producer, its mailbox
// closes and the downstream component drains naturally.
//
// Reconnect must be called from kernel context (a scheduled callback) or a
// driver flow, never from inside a component body that is mid-send.
func (a *App) Reconnect(from *Component, req string, to *Component, prov string) error {
	_, _, err := a.rebind(from, req, to, prov)
	return err
}

// rebind is the shared locked core of Reconnect and Migrate: validate the
// rewire, swap the target pointer, settle the reference counts, and close
// the displaced mailbox if this producer was its last. It returns the
// displaced interface and whether that close happened — when it did, the
// old mailbox is already closed on return, so a caller may drain the
// backlog deterministically (Receive empties then reports closed).
func (a *App) rebind(from *Component, req string, to *Component, prov string) (*ProvidedIface, bool, error) {
	if !a.started.Load() {
		return nil, false, fmt.Errorf("core: app %q not started; use Connect during assembly", a.Name)
	}
	if from == nil || to == nil {
		return nil, false, fmt.Errorf("core: reconnect with nil component")
	}
	if from == to {
		return nil, false, fmt.Errorf("core: %s reconnecting to itself", from.name)
	}
	if from.External() || to.External() {
		return nil, false, fmt.Errorf("core: %s -> %s involves an external component; rewire it in its owning process", from.name, to.name)
	}
	ri, ok := from.required[req]
	if !ok {
		return nil, false, fmt.Errorf("core: %s has no required interface %q", from.name, req)
	}
	if ri.transport != nil {
		return nil, false, fmt.Errorf("core: %s.%s is bound to a transport; a remote edge cannot be rewired locally", from.name, req)
	}
	pi, ok := to.provided[prov]
	if !ok {
		return nil, false, fmt.Errorf("core: %s has no provided interface %q", to.name, prov)
	}
	if pi.box() == nil {
		return nil, false, fmt.Errorf("core: %s.%s has no mailbox (app not started?)", to.name, prov)
	}
	a.connMu.Lock()
	defer a.connMu.Unlock()
	// The termination check must sit inside connMu: a component stores
	// StateDone before taking the lock for its producer-release cleanup,
	// so under the lock either the state already reads done (reject the
	// rewire) or the cleanup has not run yet and will see — and later
	// release — the new target this call installs.
	if from.State() == StateDone {
		return nil, false, fmt.Errorf("core: %s already terminated", from.name)
	}
	// A mailbox that lost its last producer is gone for good: sends to it
	// vanish. The check lives under connMu — the same lock every close site
	// holds — so a rewire can never race a close into installing a dead
	// target.
	if pi.closed {
		return nil, false, fmt.Errorf("core: %s.%s: %w", to.name, prov, ErrClosedMailbox)
	}
	old := ri.target.Load()
	// Same-target rewires still churn the counts (net zero) so the closed
	// check above and the refcount bookkeeping run on every call; from's own
	// sender reference keeps pi.senders above zero throughout.
	ri.target.Store(pi)
	pi.conns++
	pi.senders++
	closedOld := false
	if old != nil {
		old.conns--
		old.senders--
		if old.senders == 0 {
			closedOld = true
			old.closed = true
			if mb := old.box(); mb != nil {
				mb.Close()
			}
		}
	}
	return old, closedOld, nil
}

// Start launches the application: it materializes every provided interface
// as a platform mailbox, starts each component's observation service, and
// spawns each component's execution flow (§3.1 "launching").
func (a *App) Start() error {
	if a.started.Load() {
		return fmt.Errorf("core: app %q already started", a.Name)
	}
	a.started.Store(true)
	a.live.Store(int32(len(a.order)))

	// Count live senders per provided interface so mailboxes close when the
	// last producer terminates.
	a.connMu.Lock()
	for _, c := range a.order {
		for _, ri := range c.required {
			if t := ri.target.Load(); t != nil {
				t.senders++
			}
		}
	}
	a.connMu.Unlock()

	for _, c := range a.order {
		for _, name := range c.providedOrder {
			pi := c.provided[name]
			mb, err := a.binding.NewMailbox(c, name, pi.bufBytes)
			if err != nil {
				return fmt.Errorf("core: %s.%s: %w", c.name, name, err)
			}
			pi.setBox(mb)
		}
		c.obsIn = a.binding.NewServiceQueue(c.name + "/obs-in")
		a.startObservationService(c)
	}

	for _, c := range a.order {
		c := c
		if err := a.binding.Spawn(c, func(f Flow) { c.run(f) }); err != nil {
			return fmt.Errorf("core: spawning %s: %w", c.name, err)
		}
	}
	a.launched.Store(true)
	return nil
}

// Started reports whether Start has completed: every mailbox exists and
// reconnection is legal. Drivers spawned before Start (wall-clock bindings
// run them immediately) wait on this before touching the live control
// surface — the started flag alone flips at the top of Start, before the
// mailboxes materialize.
func (a *App) Started() bool { return a.launched.Load() }

// Done reports whether every component has terminated.
func (a *App) Done() bool {
	for _, c := range a.order {
		if c.State() != StateDone {
			return false
		}
	}
	return len(a.order) > 0
}

// Quiesced returns a channel closed once every component has reached
// StateDone — the event-driven counterpart of polling Done. It never
// closes before Start, nor for an application with no components.
func (a *App) Quiesced() <-chan struct{} { return a.quiesced }

// AwaitQuiescence blocks the calling flow until every component has
// terminated, polling on virtual time. Observation drivers use it to query
// final execution times.
func (a *App) AwaitQuiescence(f Flow) {
	for !a.Done() {
		f.SleepUS(1000)
	}
}

// SpawnDriver starts a harness flow (e.g. an observation driver). Unlike
// observation services it is not a daemon: the platform waits for it, and
// if it blocks forever that is a reportable deadlock.
func (a *App) SpawnDriver(name string, fn func(f Flow)) {
	a.binding.SpawnDriver(name, fn)
}

func (a *App) emit(e Event) {
	if a.sink != nil {
		a.sink.Emit(e)
	}
}

// Component is an EMBera component: a named active entity with provided and
// required interfaces, an execution flow, and the default observation
// interface pair.
type Component struct {
	name string
	app  *App
	body Body

	provided      map[string]*ProvidedIface
	providedOrder []string
	required      map[string]*RequiredIface
	requiredOrder []string

	placement int
	state     atomic.Int32 // State; atomic so observers read it mid-run
	owner     *Composite   // enclosing composite, if any

	startUS, endUS atomic.Int64
	stats          *stats
	probes         map[string]func() int64
	probeOrder     []string

	obsIn Mailbox // provided observation interface (service queue)

	// external marks a component whose flow executes in another process
	// (cluster sharding): the local binding registers it without spawning,
	// SampleAll skips it, and FinishExternal drives its life cycle.
	external atomic.Bool

	// reportOverride, when set, answers Snapshot from a report taken by the
	// component's owning process instead of from local state.
	reportOverride atomic.Pointer[ObsReport]

	// platformData is owned by the binding (thread, task, CPU assignment).
	// It is published atomically: on platforms with real concurrency an
	// observation sampler reads it lock-free while the binding lazily
	// creates it under its own lock.
	platformData atomic.Value
}

// PlatformData returns the binding-owned platform state, or nil before the
// binding created it.
func (c *Component) PlatformData() any { return c.platformData.Load() }

// SetPlatformData publishes the binding-owned platform state. Bindings
// serialize creation under their own lock; readers need no lock at all.
func (c *Component) SetPlatformData(v any) { c.platformData.Store(v) }

// Name returns the component name.
func (c *Component) Name() string { return c.name }

// App returns the owning application.
func (c *Component) App() *App { return c.app }

// State returns the life-cycle state.
func (c *Component) State() State { return State(c.state.Load()) }

// Placement returns the placement hint (-1 = platform default).
func (c *Component) Placement() int { return c.placement }

// Place pins the component to a platform-specific location: a core index on
// the SMP binding, a CPU index on the OS21 binding.
func (c *Component) Place(loc int) *Component {
	c.placement = loc
	return c
}

// AddProvided declares a provided interface backed by a mailbox of bufBytes
// capacity (0 selects the binding default). The name "introspection" is
// reserved for the observation interface.
func (c *Component) AddProvided(name string, bufBytes int64) error {
	if c.app.started.Load() {
		return fmt.Errorf("core: app already started")
	}
	if name == "" || name == ObsIfaceName {
		return fmt.Errorf("core: invalid provided interface name %q", name)
	}
	if _, dup := c.provided[name]; dup {
		return fmt.Errorf("core: %s already provides %q", c.name, name)
	}
	if bufBytes < 0 {
		return fmt.Errorf("core: negative buffer size %d", bufBytes)
	}
	c.provided[name] = &ProvidedIface{comp: c, name: name, bufBytes: bufBytes}
	c.providedOrder = append(c.providedOrder, name)
	return nil
}

// AddRequired declares a required interface (a connection slot).
func (c *Component) AddRequired(name string) error {
	if c.app.started.Load() {
		return fmt.Errorf("core: app already started")
	}
	if name == "" || name == ObsIfaceName {
		return fmt.Errorf("core: invalid required interface name %q", name)
	}
	if _, dup := c.required[name]; dup {
		return fmt.Errorf("core: %s already requires %q", c.name, name)
	}
	c.required[name] = &RequiredIface{comp: c, name: name}
	c.requiredOrder = append(c.requiredOrder, name)
	return nil
}

// MustAddProvided / MustAddRequired panic on error, for static assembly.
func (c *Component) MustAddProvided(name string, bufBytes int64) *Component {
	if err := c.AddProvided(name, bufBytes); err != nil {
		panic(err)
	}
	return c
}

// MustAddRequired declares a required interface, panicking on error.
func (c *Component) MustAddRequired(name string) *Component {
	if err := c.AddRequired(name); err != nil {
		panic(err)
	}
	return c
}

// RegisterProbe attaches a named custom observation function to the
// component, evaluated whenever an application-level report is built. This
// is the extension point §6 asks for ("defining and extending EMBera
// observation functions"): probes are registered by assembly or framework
// code, keeping the functional body observation-free.
func (c *Component) RegisterProbe(name string, fn func() int64) error {
	if name == "" || fn == nil {
		return fmt.Errorf("core: probe needs a name and a function")
	}
	if c.probes == nil {
		c.probes = make(map[string]func() int64)
	}
	if _, dup := c.probes[name]; dup {
		return fmt.Errorf("core: %s already has probe %q", c.name, name)
	}
	c.probes[name] = fn
	c.probeOrder = append(c.probeOrder, name)
	return nil
}

// ProvidedNames returns the provided interface names in declaration order.
func (c *Component) ProvidedNames() []string {
	return append([]string(nil), c.providedOrder...)
}

// RequiredNames returns the required interface names in declaration order.
func (c *Component) RequiredNames() []string {
	return append([]string(nil), c.requiredOrder...)
}

// ProvidedBufBytes returns the configured buffer size of a provided
// interface (after Start, the actual mailbox capacity).
func (c *Component) ProvidedBufBytes(name string) int64 {
	pi, ok := c.provided[name]
	if !ok {
		return 0
	}
	if mb := pi.box(); mb != nil {
		return mb.BufBytes()
	}
	return pi.bufBytes
}

// run is the framework wrapper around the body: life-cycle bookkeeping and
// OS-level timestamps live here, not in application code.
func (c *Component) run(f Flow) {
	c.state.Store(int32(StateStarted))
	start := c.app.binding.NowUS(c)
	c.startUS.Store(start)
	c.app.emit(Event{TimeUS: start, Kind: EvStart, Component: c.name})

	// The cleanup runs on normal return AND when the flow is forcibly
	// terminated (App.Terminate unwinds the body with a panic the platform
	// layer recognizes): either way the component reaches StateDone and
	// releases its producer references, so downstream mailboxes close and
	// the rest of the application can drain.
	defer func() {
		r := recover()
		end := c.app.binding.NowUS(c)
		c.endUS.Store(end)
		c.state.Store(int32(StateDone))
		c.app.emit(Event{TimeUS: end, Kind: EvStop, Component: c.name})
		var remote []Transport
		c.app.connMu.Lock()
		for _, name := range c.requiredOrder {
			ri := c.required[name]
			if ri.transport != nil {
				// Remote consumer: the producer-release travels over the
				// transport (outside connMu — it may write to a socket);
				// the local sender count for this edge is released by the
				// consumer's owning process.
				remote = append(remote, ri.transport)
				continue
			}
			t := ri.target.Load()
			if t == nil {
				continue
			}
			t.senders--
			if t.senders == 0 {
				t.closed = true
				if mb := t.box(); mb != nil {
					mb.Close()
				}
			}
		}
		c.app.connMu.Unlock()
		for _, t := range remote {
			t.CloseProducer()
		}
		// The countdown comes after the StateDone store, so once quiesced
		// closes, Done() observably holds for every waiter.
		if c.app.live.Add(-1) == 0 {
			close(c.app.quiesced)
		}
		if r != nil {
			panic(r)
		}
	}()
	c.body(&Ctx{c: c, f: f})
}

// Terminate forcibly stops a running component — the "termination" control
// operation of §3.1. The component transitions to done, its producer
// references are released (downstream mailboxes close once their last
// producer is gone) and its observation interface keeps answering with the
// final statistics. Terminating a finished component is a no-op.
func (a *App) Terminate(c *Component) error {
	if !a.started.Load() {
		return fmt.Errorf("core: app %q not started", a.Name)
	}
	if c.State() == StateDone {
		return nil
	}
	a.binding.Kill(c)
	return nil
}

// ProvidedIface is a provided interface: a named mailbox receiving messages.
// The mailbox reference is published atomically: App.Start materializes it
// while, on platforms with real concurrency, monitor samplers started ahead
// of the application may already be walking the interface lists.
type ProvidedIface struct {
	comp     *Component
	name     string
	bufBytes int64
	mb       atomic.Pointer[Mailbox]
	conns    int // connections established at assembly
	senders  int // producers still running
	// closed records that the mailbox was closed because its last producer
	// left (guarded by connMu, like the counts). Rewires consult it so a
	// dead mailbox is never installed as a send target.
	closed bool
}

// box returns the materialized mailbox, or nil before App.Start.
func (pi *ProvidedIface) box() Mailbox {
	if p := pi.mb.Load(); p != nil {
		return *p
	}
	return nil
}

// setBox publishes the mailbox.
func (pi *ProvidedIface) setBox(m Mailbox) { pi.mb.Store(&m) }

// RequiredIface is a required interface: "a pointer towards a provided
// interface"; nil until connected. The pointer is atomic so the send hot
// path can read it without contending on the app-wide connection lock: a
// send racing a Reconnect sees either the old or the new target, never a
// torn state. The reference counts (conns, senders) stay under connMu —
// they are only touched at assembly, reconnection and termination.
type RequiredIface struct {
	comp   *Component
	name   string
	target atomic.Pointer[ProvidedIface]

	// transport, when non-nil, carries sends to a consumer in another
	// process instead of the target's local mailbox. Written once by
	// BindTransport before Start; the spawn of the owning component's flow
	// orders that write before any read on the send path, so no atomic is
	// needed.
	transport Transport
}

// Connected reports whether the interface has been wired to a target.
func (ri *RequiredIface) Connected() bool { return ri.target.Load() != nil }

// sortedKeys returns map keys in deterministic order (reports, listings).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
