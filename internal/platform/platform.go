// Package platform is the seam the paper's central claim rests on: one
// component model, many platforms, many applications. A Platform bundles
// everything the harness needs to run an EMBera application on a concrete
// (simulated) machine — kernel construction, the core.Binding, and the
// topology metadata placement decisions depend on. A Workload is the
// platform-independent counterpart: it assembles components onto a
// *core.App, and after the run self-checks its results.
//
// Both sides are registries. Adding a platform means implementing Platform
// and calling Register in an init function; adding a workload means
// implementing Workload and calling RegisterWorkload. Every binary,
// experiment and conformance battery then picks both by name, so a new
// platform or workload is an O(1) addition instead of an O(platforms ×
// workloads) copy-paste.
package platform

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"embera/internal/core"
	"embera/internal/sim"
)

// Topology is the placement metadata a workload may consult when deciding
// where components go. Locations are opaque integer slots fed to
// core.Component.Place: core indices on the SMP machine, CPU indices on the
// STi7200.
type Topology struct {
	// Locations is the number of placement slots (exclusive upper bound for
	// Place hints).
	Locations int
	// Host is the general-purpose/control processor's location, or -1 on
	// symmetric platforms where every location is equivalent.
	Host int
	// Accelerators lists the accelerator locations, outermost first; empty
	// on symmetric platforms.
	Accelerators []int
}

// Symmetric reports whether every location is equivalent (no host /
// accelerator split).
func (t Topology) Symmetric() bool { return t.Host < 0 && len(t.Accelerators) == 0 }

// Machine is one constructed instance of a platform hosting one
// application: the thing that owns the clock and drives execution to
// completion. On the simulated platforms it wraps a discrete-event kernel;
// on the native platform it supervises real goroutines against the wall
// clock. Harness code that works through Machine instead of *sim.Kernel
// runs unchanged on both kinds.
type Machine interface {
	// Run drives the started application until every component and every
	// driver flow has finished. horizonUS bounds the run in platform time —
	// virtual microseconds on simulated machines, wall-clock microseconds
	// on native ones; a run still incomplete at the horizon (or a detected
	// deadlock) is an error.
	Run(horizonUS int64) error
	// NowUS reads the machine's global clock in microseconds since
	// construction.
	NowUS() int64
	// Kernel exposes the discrete-event kernel backing a simulated
	// machine, or nil on platforms that execute in real time. Callers that
	// need it (kernel-level tracing, custom event scheduling) must check
	// for nil.
	Kernel() *sim.Kernel
}

// Interruptible is the optional long-running lifecycle hook: machines that
// can cut an in-flight Run short from another goroutine implement it.
// Interrupt asks the running application to wind down — on the native
// machine every component is terminated, so Run returns once the unwound
// goroutines and drivers drain — and must be safe to call from any
// goroutine, any number of times, including before Run. The simulated
// machines do not implement it: their kernel is single-threaded and a
// cross-thread poke would race it, so long-running front ends let a
// simulated generation run out (virtual-time runs finish at host speed)
// and stop between runs instead.
type Interruptible interface {
	Interrupt()
}

// Interrupt invokes m's Interruptible hook when the machine has one and
// reports whether it did — the seam embera-serve's stop/shutdown paths use
// without caring which binding they are holding.
func Interrupt(m Machine) bool {
	if i, ok := m.(Interruptible); ok {
		i.Interrupt()
		return true
	}
	return false
}

// Platform is one registered execution platform.
type Platform interface {
	// Name is the registry key ("smp", "sti7200", "native").
	Name() string
	// Describe is a one-line human description.
	Describe() string
	// Topology reports the placement metadata.
	Topology() Topology
	// Deterministic reports whether two identical runs produce
	// bit-identical timing observations. True for the virtual-time
	// simulators; false for wall-clock platforms, where harnesses must
	// only assert result checksums, never timing fingerprints.
	Deterministic() bool
	// New constructs a fresh machine and an application bound to this
	// platform. Every call is an independent machine.
	New(appName string) (Machine, *core.App)
}

// SimMachine adapts a discrete-event kernel to the Machine interface; the
// simulated platforms return it from New.
type SimMachine struct{ K *sim.Kernel }

// Run implements Machine via Kernel.RunUntil, reporting an unfinished run
// exactly as the kernel does (a *sim.DeadlockError when flows are parked
// with no pending events).
func (m SimMachine) Run(horizonUS int64) error {
	return m.K.RunUntil(sim.Time(sim.Duration(horizonUS) * sim.Microsecond))
}

// NowUS implements Machine.
func (m SimMachine) NowUS() int64 { return int64(m.K.Now()) / int64(sim.Microsecond) }

// Kernel implements Machine.
func (m SimMachine) Kernel() *sim.Kernel { return m.K }

// Options are the workload-independent assembly knobs the harness passes
// through to Workload.Build.
type Options struct {
	// Scale is the workload's primary size knob — frames to decode for the
	// MJPEG workload, messages to produce for the pipeline workload. 0
	// selects the workload's default.
	Scale int
	// Stream optionally provides raw input bytes for stream-driven
	// workloads (the MJPEG workload's concatenated-JPEG input); nil lets
	// the workload synthesize an input from Scale.
	Stream []byte
	// MessageBytes, when positive, overrides every message's modelled wire
	// size (the Figure 4 / Figure 8 style sweeps).
	MessageBytes int
}

// Workload assembles an application for any platform.
type Workload interface {
	// Name is the registry key ("mjpeg", "pipeline").
	Name() string
	// Describe is a one-line human description.
	Describe() string
	// Build assembles the workload's components onto a, consulting p's
	// topology for placement. The returned Instance tracks results so they
	// can be checked after the run.
	Build(a *core.App, p Platform, opts Options) (Instance, error)
}

// Instance is one assembled workload run: live result tracking plus the
// post-run self-check.
type Instance interface {
	// Units reports the work units completed so far (frames decoded,
	// messages consumed).
	Units() int
	// Checksum digests the computed results in an order- and
	// platform-independent way: two correct runs of the same workload at
	// the same scale produce the same checksum on every platform.
	Checksum() uint64
	// Check verifies the results after the application quiesced.
	Check() error
	// Summary is a one-line human description of the outcome.
	Summary() string
}

// WorkloadFamily is a parameterized workload generator registered under a
// prefix: a name of the form "<prefix>:<arg>" resolves by handing arg to
// Parse. The canonical example is the fuzz family "rand:<seed>", which
// turns every registry consumer — binaries, experiment harnesses,
// RunMatrix sweeps, conformance batteries — into a driver for generated
// workloads without any of them knowing the family exists.
type WorkloadFamily struct {
	// Prefix is the registry key before the colon ("rand").
	Prefix string
	// Placeholder is the listing form shown next to concrete workload
	// names ("rand:<seed>").
	Placeholder string
	// Describe is a one-line human description.
	Describe string
	// Parse builds a fresh Workload from the text after the colon. A
	// malformed argument returns an error; the registry wraps it in the
	// uniform unknown-workload error so every front-end rejects it with
	// the same exit-2 registry listing as a typo'd concrete name.
	Parse func(arg string) (Workload, error)
}

// The registries are mutex-guarded: most registration happens in package
// init functions, but nothing stops a test or a plugin-style extension from
// registering (or resolving) concurrently, and an unsynchronized map write
// is a crash under the race detector long before it is a logic bug.
var (
	regMu     sync.RWMutex
	platforms = map[string]Platform{}
	workloads = map[string]func() Workload{}
	families  = map[string]WorkloadFamily{}
)

// Register adds a platform to the registry. Duplicate names panic: they are
// programming errors in init wiring, and overwriting silently would let two
// packages fight over a name with import-order-dependent results.
func Register(p Platform) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := platforms[p.Name()]; dup {
		panic(fmt.Sprintf("platform: duplicate platform %q", p.Name()))
	}
	platforms[p.Name()] = p
}

// RegisterWorkload adds a workload factory to the registry. The factory
// returns a fresh Workload with default configuration on every call.
// Duplicate names panic, as in Register. Names containing a colon are
// rejected (that syntax is reserved for workload families), and a name
// colliding with a registered family prefix panics regardless of which
// side registered first, so resolution can never depend on init order.
func RegisterWorkload(name string, f func() Workload) {
	if strings.Contains(name, ":") {
		panic(fmt.Sprintf("platform: workload name %q contains ':' (reserved for families)", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := workloads[name]; dup {
		panic(fmt.Sprintf("platform: duplicate workload %q", name))
	}
	if _, dup := families[name]; dup {
		panic(fmt.Sprintf("platform: workload %q collides with a workload family prefix", name))
	}
	workloads[name] = f
}

// RegisterWorkloadFamily adds a parameterized workload family. Duplicate
// prefixes — including a prefix colliding with a concrete workload name —
// panic, as in RegisterWorkload.
func RegisterWorkloadFamily(f WorkloadFamily) {
	if f.Prefix == "" || strings.Contains(f.Prefix, ":") || f.Parse == nil {
		panic(fmt.Sprintf("platform: workload family needs a colon-free prefix and a parser, got %q", f.Prefix))
	}
	if f.Placeholder == "" {
		f.Placeholder = f.Prefix + ":<arg>"
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := families[f.Prefix]; dup {
		panic(fmt.Sprintf("platform: duplicate workload family %q", f.Prefix))
	}
	if _, dup := workloads[f.Prefix]; dup {
		panic(fmt.Sprintf("platform: workload family %q collides with a workload name", f.Prefix))
	}
	families[f.Prefix] = f
}

// Get resolves a platform by name. The error for an unknown name lists
// every registered platform.
func Get(name string) (Platform, error) {
	regMu.RLock()
	p, ok := platforms[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// MustGet is Get that panics on error, for static wiring.
func MustGet(name string) Platform {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the registered platform names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(platforms))
	for n := range platforms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GetWorkload resolves a workload by name, returning a fresh instance.
// Names containing a colon resolve through the workload-family registry:
// "rand:42" hands "42" to the "rand" family's parser. Unknown names — and
// family arguments the parser rejects — return the uniform registry error
// listing every registered workload and family, so a malformed "rand:x" is
// refused exactly like a typo'd concrete name.
func GetWorkload(name string) (Workload, error) {
	regMu.RLock()
	f, ok := workloads[name]
	var fam WorkloadFamily
	var famOK bool
	if !ok {
		if i := strings.IndexByte(name, ':'); i >= 0 {
			fam, famOK = families[name[:i]]
		}
	}
	regMu.RUnlock()
	if ok {
		return f(), nil
	}
	if famOK {
		w, err := fam.Parse(name[strings.IndexByte(name, ':')+1:])
		if err != nil {
			return nil, fmt.Errorf("platform: unknown workload %q (registered: %s): %w",
				name, strings.Join(WorkloadListing(), ", "), err)
		}
		return w, nil
	}
	return nil, fmt.Errorf("platform: unknown workload %q (registered: %s)",
		name, strings.Join(WorkloadListing(), ", "))
}

// MustGetWorkload is GetWorkload that panics on error.
func MustGetWorkload(name string) Workload {
	w, err := GetWorkload(name)
	if err != nil {
		panic(err)
	}
	return w
}

// WorkloadNames returns the registered concrete workload names, sorted.
// Families are excluded: enumerating callers (RunMatrix over "all
// workloads", the conformance matrix) cannot run a family without an
// argument. Use WorkloadListing for human-facing listings.
func WorkloadNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkloadFamilies returns the registered families sorted by prefix.
func WorkloadFamilies() []WorkloadFamily {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]WorkloadFamily, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// WorkloadListing returns the concrete workload names plus each family's
// placeholder form ("rand:<seed>"), sorted — the human-facing listing
// usage errors and the binaries' -list output print. (-list-workloads
// deliberately sticks to WorkloadNames: its output is machine-enumerable
// and gets fed back into -workload, which a placeholder would break.)
func WorkloadListing() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(workloads)+len(families))
	for n := range workloads {
		names = append(names, n)
	}
	for _, f := range families {
		names = append(names, f.Placeholder)
	}
	sort.Strings(names)
	return names
}
