package pipelineapp_test

import (
	"testing"

	"embera/internal/core"
	"embera/internal/pipelineapp"
	"embera/internal/platform"
	"embera/internal/sim"
)

func runOn(t *testing.T, platformName string, cfg pipelineapp.Config) *pipelineapp.App {
	t.Helper()
	p := platform.MustGet(platformName)
	m, a := p.New("pipe")
	app, err := pipelineapp.Build(a, cfg, p.Topology())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	horizonUS := int64(10 * 3600 * sim.Second / sim.Microsecond)
	if !p.Deterministic() {
		horizonUS = 60 * 1e6
	}
	if err := m.Run(horizonUS); err != nil {
		t.Fatal(err)
	}
	if !a.Done() {
		t.Fatal("pipeline did not quiesce")
	}
	return app
}

func TestRunsOnEveryPlatformAndChecksOut(t *testing.T) {
	for _, name := range platform.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := pipelineapp.DefaultConfig()
			cfg.Messages = 60
			app := runOn(t, name, cfg)
			if err := app.Check(); err != nil {
				t.Fatal(err)
			}
			if app.Received() != 60 {
				t.Fatalf("received %d, want 60", app.Received())
			}
		})
	}
}

func TestChecksumMatchesAcrossPlatformsAndShapes(t *testing.T) {
	base := pipelineapp.DefaultConfig()
	base.Messages = 37 // deliberately not a fanout multiple
	var sums []uint64
	for _, pn := range platform.Names() {
		for _, fanout := range []int{1, 3} {
			cfg := base
			cfg.Fanout = fanout
			app := runOn(t, pn, cfg)
			if err := app.Check(); err != nil {
				t.Fatalf("%s fanout %d: %v", pn, fanout, err)
			}
			sums = append(sums, app.Checksum())
		}
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("checksums diverge across platforms/shapes: %x", sums)
		}
	}
	if want := pipelineapp.Expected(base); sums[0] != want {
		t.Fatalf("checksum %016x, want %016x", sums[0], want)
	}
}

func TestStageAndFanoutShapeCommunication(t *testing.T) {
	cfg := pipelineapp.DefaultConfig()
	cfg.Stages = 3
	cfg.Fanout = 2
	cfg.Messages = 40
	app := runOn(t, "smp", cfg)
	if len(app.Workers) != 3 || len(app.Workers[0]) != 2 {
		t.Fatalf("worker matrix = %dx%d, want 3x2", len(app.Workers), len(app.Workers[0]))
	}
	// Conservation per stage: each stage forwards every message exactly once.
	for s, stage := range app.Workers {
		var sent, recvd uint64
		for _, w := range stage {
			r := w.Snapshot(core.LevelApplication).App
			sent += r.SendOps
			recvd += r.RecvOps
		}
		if sent != 40 || recvd != 40 {
			t.Errorf("stage %d ops = %d sent / %d received, want 40/40", s+1, sent, recvd)
		}
	}
	src := app.Source.Snapshot(core.LevelApplication).App
	if src.SendOps != 40 || src.RecvOps != 0 {
		t.Errorf("source ops = %d/%d, want 40/0", src.SendOps, src.RecvOps)
	}
	sink := app.Sink.Snapshot(core.LevelApplication).App
	if sink.RecvOps != 40 || sink.SendOps != 0 {
		t.Errorf("sink ops = %d/%d, want 0/40", sink.SendOps, sink.RecvOps)
	}
}

func TestMessageBytesShapeWireStats(t *testing.T) {
	cfg := pipelineapp.DefaultConfig()
	cfg.Messages = 20
	cfg.MessageBytes = 1 << 14
	app := runOn(t, "smp", cfg)
	st := app.Source.Snapshot(core.LevelMiddleware).Middleware.Send["out0"]
	if st.Ops == 0 || st.Bytes != st.Ops*uint64(cfg.MessageBytes) {
		t.Errorf("wire stats not shaped by MessageBytes: %+v", st)
	}
}

func TestAcceleratorPlacement(t *testing.T) {
	p := platform.MustGet("sti7200")
	topo := p.Topology()
	k, a := p.New("pipe")
	cfg := pipelineapp.DefaultConfig()
	cfg.Messages = 10
	app, err := pipelineapp.Build(a, cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	_ = k
	if app.Source.Placement() != topo.Host || app.Sink.Placement() != topo.Host {
		t.Errorf("source/sink placed at %d/%d, want host %d",
			app.Source.Placement(), app.Sink.Placement(), topo.Host)
	}
	accel := map[int]bool{}
	for _, loc := range topo.Accelerators {
		accel[loc] = true
	}
	for _, stage := range app.Workers {
		for _, w := range stage {
			if !accel[w.Placement()] {
				t.Errorf("worker %s placed at %d, not an accelerator", w.Name(), w.Placement())
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	p := platform.MustGet("smp")
	_, a := p.New("bad")
	for _, cfg := range []pipelineapp.Config{
		{Stages: 0, Fanout: 1, Messages: 1, MessageBytes: 1},
		{Stages: 1, Fanout: 0, Messages: 1, MessageBytes: 1},
		{Stages: 1, Fanout: 1, Messages: 0, MessageBytes: 1},
		{Stages: 1, Fanout: 1, Messages: 1, MessageBytes: 0},
	} {
		if _, err := pipelineapp.Build(a, cfg, p.Topology()); err == nil {
			t.Errorf("invalid config %+v accepted", cfg)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := pipelineapp.DefaultConfig()
	cfg.Messages = 30
	run := func() (uint64, int64) {
		app := runOn(t, "smp", cfg)
		return app.Checksum(), app.Sink.Snapshot(core.LevelOS).OS.ExecTimeUS
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic: %x/%d vs %x/%d", c1, t1, c2, t2)
	}
}
