package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"embera/internal/core"
	"embera/internal/ctl"
	"embera/internal/exp"
	"embera/internal/monitor"
	"embera/internal/platform"
	"embera/internal/replaywl"
	"embera/internal/trace"
)

// firingQueueCap bounds the per-assembly executor queue: a controller that
// decides faster than actions apply sheds firings with a counted drop
// rather than ever blocking the monitor's pump flow.
const firingQueueCap = 64

// Config parameterizes a Server. The zero value is serviceable.
type Config struct {
	// QueueCap is the per-SSE-subscriber event queue capacity (0 selects
	// DefaultQueueCap). A stalled reader holds at most this many events.
	QueueCap int
}

// Server owns a set of served assemblies and the HTTP surface over them:
// SSE window streams, the live control API, health and metrics. Create
// with NewServer, add assemblies, then mount Handler on an http.Server.
type Server struct {
	broker *Broker
	start  time.Time

	mu    sync.Mutex
	byID  map[string]*Assembly
	order []*Assembly // insertion order, for stable listings
}

// NewServer creates an empty server.
func NewServer(cfg Config) *Server {
	return &Server{
		broker: NewBroker(cfg.QueueCap),
		start:  time.Now(),
		byID:   make(map[string]*Assembly),
	}
}

// Broker exposes the server's fan-out broker (tests, custom subscribers).
func (s *Server) Broker() *Broker { return s.broker }

// AddAssembly launches workload w on platform p as a served assembly under
// the given ID ("" auto-assigns a0, a1, …). The assembly's monitor config
// comes from sopts.Monitor; the server appends its own streaming sink so
// every closed window reaches the broker.
func (s *Server) AddAssembly(id string, p platform.Platform, w platform.Workload, sopts exp.ServedOptions) (*Assembly, error) {
	s.mu.Lock()
	if id == "" {
		id = fmt.Sprintf("a%d", len(s.order))
	}
	if _, dup := s.byID[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: duplicate assembly id %q", id)
	}
	// Reserve the ID before the (slow) launch so concurrent adds cannot
	// collide on it.
	s.byID[id] = nil
	s.mu.Unlock()

	as := &Assembly{
		id: id, server: s, last: make(map[string]monitor.WindowRecord),
		ctl:      ctl.NewController(),
		firings:  make(chan ctl.Firing, firingQueueCap),
		execStop: make(chan struct{}),
	}
	if sopts.Monitor == nil {
		sopts.Monitor = &monitor.Config{}
	} else {
		mcfg := *sopts.Monitor
		sopts.Monitor = &mcfg
	}
	sopts.Monitor.Sinks = append(append([]monitor.Sink(nil), sopts.Monitor.Sinks...), as)
	run, err := exp.RunServed(p, w, sopts)
	if err != nil {
		s.mu.Lock()
		delete(s.byID, id)
		s.mu.Unlock()
		return nil, err
	}
	as.run.Store(run)
	go as.execLoop()
	s.mu.Lock()
	s.byID[id] = as
	s.order = append(s.order, as)
	s.mu.Unlock()
	return as, nil
}

// Assemblies returns the assemblies in insertion order.
func (s *Server) Assemblies() []*Assembly {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Assembly(nil), s.order...)
}

// Assembly looks one assembly up by ID.
func (s *Server) Assembly(id string) (*Assembly, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	as, ok := s.byID[id]
	return as, ok && as != nil
}

// Close shuts every assembly down and waits for their generation loops.
func (s *Server) Close() {
	for _, as := range s.Assemblies() {
		as.stopExec.Do(func() { close(as.execStop) })
		as.Run().Close()
	}
}

// Assembly is one served platform×workload pair: the exp.ServedRun doing
// the work plus the streaming seam that feeds its windows to the broker.
// It implements monitor.Sink (every generation's monitor writes closed
// windows here) and monitor.CounterAttacher (each generation's monitor
// wires its loss counters in, so published records carry ring-drop and
// sink-error accounting).
type Assembly struct {
	id     string
	server *Server
	run    atomic.Pointer[exp.ServedRun]
	seq    atomic.Uint64

	// Feedback control: the controller decides inside WriteWindow (pure,
	// never blocks); firings cross this bounded queue to the executor
	// goroutine, which applies them through the served run's control
	// surface. A full queue sheds with a counted drop.
	ctl            *ctl.Controller
	firings        chan ctl.Firing
	execStop       chan struct{}
	stopExec       sync.Once
	firingsDropped atomic.Uint64

	mu       sync.Mutex
	counters monitor.LossCounters
	last     map[string]monitor.WindowRecord // latest window per component
	windows  uint64
}

// ID returns the assembly's server-unique ID.
func (as *Assembly) ID() string { return as.id }

// Ctl returns the assembly's feedback controller (policy install, status).
func (as *Assembly) Ctl() *ctl.Controller { return as.ctl }

// FiringsDropped counts firings shed because the executor queue was full.
func (as *Assembly) FiringsDropped() uint64 { return as.firingsDropped.Load() }

// execLoop is the assembly's action executor: it applies each queued
// firing through the served run's control surface. Failures are counted
// against the policy (visible in status and the embera_ctl_* metrics), not
// fatal — the next window re-evaluates the rule.
func (as *Assembly) execLoop() {
	for {
		select {
		case <-as.execStop:
			return
		case f := <-as.firings:
			if err := as.applyFiring(f); err != nil {
				as.ctl.NoteError(f.Policy.Name)
			}
		}
	}
}

// applyFiring maps one policy action onto the served run's control surface.
func (as *Assembly) applyFiring(f ctl.Firing) error {
	run := as.Run()
	a := f.Policy.Action
	switch a.Type {
	case ctl.ActReconnect:
		return run.Reconnect(a.From, a.Required, a.To, a.Provided)
	case ctl.ActMigrate:
		return run.Migrate(a.From, a.Required, a.To, a.Provided)
	case ctl.ActTerminate:
		return run.Terminate(a.Component)
	case ctl.ActSetPeriod:
		level, err := parseLevel(a.Level)
		if err != nil {
			return err
		}
		return run.SetPeriod(level, a.PeriodUS)
	case ctl.ActSetWindow:
		return run.SetWindowUS(a.WindowUS)
	case ctl.ActPause:
		run.Pause()
		return nil
	case ctl.ActResume:
		run.Resume()
		return nil
	}
	return fmt.Errorf("serve: unknown action type %q", a.Type)
}

// Run returns the underlying served run (control surface and stats).
func (as *Assembly) Run() *exp.ServedRun { return as.run.Load() }

// Windows reports how many windows the assembly has published.
func (as *Assembly) Windows() uint64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.windows
}

// LastWindows returns the latest window record per component — the
// "current" aggregates /metrics exports as gauges.
func (as *Assembly) LastWindows() []monitor.WindowRecord {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]monitor.WindowRecord, 0, len(as.last))
	for _, rec := range as.last {
		out = append(out, rec)
	}
	return out
}

// AttachCounters implements monitor.CounterAttacher; each generation's
// monitor attaches itself when built.
func (as *Assembly) AttachCounters(c monitor.LossCounters) {
	as.mu.Lock()
	as.counters = c
	as.mu.Unlock()
}

// WriteWindow implements monitor.Sink: flatten the window, stamp the
// current generation's loss counters, remember it as the component's
// latest, and publish. It never blocks — Publish is non-blocking by
// contract — so the monitor's pump flow is never held up by subscribers.
func (as *Assembly) WriteWindow(w monitor.WindowStats) error {
	rec := monitor.NewWindowRecord(w)
	as.mu.Lock()
	if as.counters != nil {
		rec.RingDropped = as.counters.Dropped()
		rec.SinkErrors = as.counters.SinkErrors()
	}
	as.last[rec.Component] = rec
	as.windows++
	as.mu.Unlock()
	var gen uint64
	if run := as.run.Load(); run != nil {
		gen = run.Generations()
	}
	as.server.broker.Publish(Event{
		Assembly:   as.id,
		Generation: gen,
		Seq:        as.seq.Add(1),
		Window:     rec,
	})
	// Feed the feedback controller. Observe only decides; the firings are
	// handed to the executor goroutine without ever blocking this flow.
	for _, f := range as.ctl.Observe(rec) {
		select {
		case as.firings <- f:
		default:
			as.firingsDropped.Add(1)
		}
	}
	return nil
}

// LevelSnapshot is one sampler's live configuration on the wire.
type LevelSnapshot struct {
	Level    string `json:"level"`
	PeriodUS int64  `json:"period_us"`
}

// Snapshot is one assembly's state as served by the listing endpoints.
type Snapshot struct {
	ID       string `json:"id"`
	Platform string `json:"platform"`
	Workload string `json:"workload"`

	Running bool `json:"running"`
	Stopped bool `json:"stopped"`
	Paused  bool `json:"paused"`

	Generations     uint64 `json:"generations"`
	CompletedChecks uint64 `json:"completed_checks"`
	Units           uint64 `json:"units"`
	Windows         uint64 `json:"windows"`
	Samples         uint64 `json:"samples"`
	RingDropped     uint64 `json:"ring_dropped"`
	SinkErrors      uint64 `json:"sink_errors"`

	Levels []LevelSnapshot `json:"levels"`
	// EffectiveLevels is the period each sampler is actually running at:
	// above the configured period when the adaptive overhead controller has
	// backed a loaded sampler off.
	EffectiveLevels   []LevelSnapshot `json:"effective_levels"`
	OverheadBudgetPct float64         `json:"overhead_budget_pct,omitempty"`
	WindowUS          int64           `json:"window_us"`
	LastMakespanUS    int64           `json:"last_makespan_us"`

	LastErr             string `json:"last_err,omitempty"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
}

// Snapshot captures the assembly's current state.
func (as *Assembly) Snapshot() Snapshot {
	run := as.Run()
	st := run.Stats()
	snap := Snapshot{
		ID:                  as.id,
		Platform:            run.Platform().Name(),
		Workload:            run.Workload().Name(),
		Running:             st.Running,
		Stopped:             st.Stopped,
		Paused:              st.Paused,
		Generations:         st.Generations,
		CompletedChecks:     st.CompletedChecks,
		Units:               st.Units,
		Windows:             as.Windows(),
		Samples:             st.Samples,
		RingDropped:         st.RingDropped,
		SinkErrors:          st.SinkErrors,
		WindowUS:            st.WindowUS,
		LastMakespanUS:      st.LastMakespanUS,
		LastErr:             st.LastErr,
		ConsecutiveFailures: st.ConsecutiveFailures,
	}
	snap.OverheadBudgetPct = st.OverheadBudgetPct
	for _, lp := range st.Levels {
		snap.Levels = append(snap.Levels, LevelSnapshot{Level: lp.Level.String(), PeriodUS: lp.PeriodUS})
	}
	for _, lp := range st.EffectiveLevels {
		snap.EffectiveLevels = append(snap.EffectiveLevels, LevelSnapshot{Level: lp.Level.String(), PeriodUS: lp.PeriodUS})
	}
	return snap
}

// Handler mounts the service's HTTP surface:
//
//	GET  /healthz                       liveness + per-assembly status
//	GET  /metrics                       Prometheus text exposition
//	GET  /v1/assemblies                 JSON listing; SSE window stream of
//	                                    every assembly when the request
//	                                    accepts text/event-stream
//	GET  /v1/assemblies/{id}            one assembly's JSON snapshot
//	GET  /v1/assemblies/{id}/windows    SSE window stream of one assembly
//	POST /v1/assemblies/{id}/control    live control API
//	GET  /v1/assemblies/{id}/policies   installed feedback policies + status
//	POST /v1/assemblies/{id}/policies   replace the feedback policy set
//	GET  /v1/assemblies/{id}/capture    record the next generation as a
//	                                    replayable trace bundle
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/assemblies", s.handleAssemblies)
	mux.HandleFunc("GET /v1/assemblies/{id}", s.handleAssembly)
	mux.HandleFunc("GET /v1/assemblies/{id}/windows", s.handleWindows)
	mux.HandleFunc("POST /v1/assemblies/{id}/control", s.handleControl)
	mux.HandleFunc("GET /v1/assemblies/{id}/policies", s.handlePoliciesGet)
	mux.HandleFunc("POST /v1/assemblies/{id}/policies", s.handlePoliciesPost)
	mux.HandleFunc("GET /v1/assemblies/{id}/capture", s.handleCapture)
	return mux
}

// captureRecorderCap bounds the capture event ring. A generation that
// overflows it is rejected (a dropped event would break the replay model),
// so the cap also bounds the endpoint's memory.
const captureRecorderCap = 1 << 17

// captureTimeout bounds how long /capture waits for a generation to finish
// before giving up with 504. Generations are short (milliseconds of
// virtual time); a stopped assembly simply never delivers.
const captureTimeout = 30 * time.Second

// handleCapture records the assembly's next generation into a replay
// bundle: it arms a trace recorder as that generation's event sink, waits
// for the generation to finish, validates the capture end to end and
// streams the bundle bytes. The result feeds replay:<file> directly —
// a live service run becomes a deterministic benchmark with one GET.
func (s *Server) handleCapture(w http.ResponseWriter, r *http.Request) {
	as, ok := s.lookup(w, r)
	if !ok {
		return
	}
	run := as.Run()
	rec := trace.NewRecorder(captureRecorderCap)
	select {
	case cg := <-run.CaptureNext(rec):
		if cg.Err != nil {
			status := http.StatusInternalServerError
			if errors.Is(cg.Err, exp.ErrNotRunning) {
				status = http.StatusConflict
			}
			writeJSON(w, status, map[string]string{"error": fmt.Sprintf("captured generation failed: %v", cg.Err)})
			return
		}
		b, err := replaywl.Capture(cg.App, run.Platform().Name(), run.Workload().Name(), rec)
		if err == nil {
			err = b.Validate()
		}
		if err != nil {
			// Lossy or incomplete traces (an overflowed ring, a sharded
			// platform recording only its own shard) are not replayable;
			// say so rather than hand out a broken bundle.
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", as.id+".emb"))
		if err := replaywl.WriteBundle(w, b); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	case <-r.Context().Done():
		return
	case <-time.After(captureTimeout):
		writeJSON(w, http.StatusGatewayTimeout,
			map[string]string{"error": "no generation finished within the capture window (is the assembly stopped?)"})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleAssemblies(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamWindows(w, r, "")
		return
	}
	snaps := []Snapshot{}
	for _, as := range s.Assemblies() {
		snaps = append(snaps, as.Snapshot())
	}
	writeJSON(w, http.StatusOK, snaps)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Assembly, bool) {
	id := r.PathValue("id")
	as, ok := s.Assembly(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no assembly %q", id)})
		return nil, false
	}
	return as, true
}

func (s *Server) handleAssembly(w http.ResponseWriter, r *http.Request) {
	as, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, as.Snapshot())
}

func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	as, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.streamWindows(w, r, as.id)
}

// wireEvent is the SSE data payload: the event plus the reader's own
// cumulative drop count, so every message tells the consumer how much of
// its stream has been shed so far.
type wireEvent struct {
	Event
	SubscriberDropped uint64 `json:"subscriber_dropped"`
}

// streamWindows serves one SSE subscription: subscribe, stream until the
// client goes away. A reader that stops consuming blocks here on Write
// once the socket buffers fill; its queue then sheds with counted drops
// and the rest of the service is unaffected.
func (s *Server) streamWindows(w http.ResponseWriter, r *http.Request, filter string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.broker.Subscribe(filter)
	defer s.broker.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: 2000\n\n")
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-sub.C():
			data, err := json.Marshal(wireEvent{Event: ev, SubscriberDropped: sub.Dropped()})
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: window\nid: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// ControlRequest is the control API's POST body. Action selects the verb;
// the other fields parameterize it:
//
//	start       relaunch a stopped assembly
//	stop        terminate the live generation, park the assembly
//	pause       suspend sampling (workload keeps running)
//	resume      re-enable sampling
//	set-period  level + period_us: retune a sampler live
//	set-window  window_us: change the aggregation window live
//	reconnect   from + required + to + provided: rewire a live connection
//	migrate     like reconnect, and move the displaced inbox's backlog to
//	            the new provider when the rewire closed it
//	terminate   component: force-stop one component of the live generation
type ControlRequest struct {
	Action    string `json:"action"`
	Level     string `json:"level,omitempty"`
	PeriodUS  int64  `json:"period_us,omitempty"`
	WindowUS  int64  `json:"window_us,omitempty"`
	From      string `json:"from,omitempty"`
	Required  string `json:"required,omitempty"`
	To        string `json:"to,omitempty"`
	Provided  string `json:"provided,omitempty"`
	Component string `json:"component,omitempty"`
}

// parseLevel maps the wire names to observation levels.
func parseLevel(s string) (core.ObsLevel, error) {
	switch s {
	case "os":
		return core.LevelOS, nil
	case "middleware":
		return core.LevelMiddleware, nil
	case "application":
		return core.LevelApplication, nil
	case "all":
		return core.LevelAll, nil
	}
	return 0, fmt.Errorf("unknown observation level %q (want os, middleware, application or all)", s)
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	as, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req ControlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad control body: %v", err)})
		return
	}
	run := as.Run()
	var err error
	switch req.Action {
	case "start":
		run.Start()
	case "stop":
		run.Stop()
	case "pause":
		run.Pause()
	case "resume":
		run.Resume()
	case "set-period":
		// Validate at the door: a zero or negative period must be a 400
		// here, never a value handed on toward the monitor.
		if req.PeriodUS <= 0 {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("set-period needs a positive period_us, got %d", req.PeriodUS)})
			return
		}
		var level core.ObsLevel
		if level, err = parseLevel(req.Level); err == nil {
			err = run.SetPeriod(level, req.PeriodUS)
		}
	case "set-window":
		if req.WindowUS <= 0 {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("set-window needs a positive window_us, got %d", req.WindowUS)})
			return
		}
		err = run.SetWindowUS(req.WindowUS)
	case "reconnect":
		err = run.Reconnect(req.From, req.Required, req.To, req.Provided)
	case "migrate":
		err = run.Migrate(req.From, req.Required, req.To, req.Provided)
	case "terminate":
		err = run.Terminate(req.Component)
	default:
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("unknown action %q", req.Action)})
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, exp.ErrNotRunning) {
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "assembly": as.Snapshot()})
}

// policiesReply is the GET /policies body: the installed rule set plus its
// live hysteresis state and counters.
type policiesReply struct {
	Policies []ctl.Policy       `json:"policies"`
	Status   []ctl.PolicyStatus `json:"status"`
}

func (s *Server) handlePoliciesGet(w http.ResponseWriter, r *http.Request) {
	as, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, policiesReply{
		Policies: as.ctl.Policies(),
		Status:   as.ctl.Status(),
	})
}

// handlePoliciesPost replaces the assembly's feedback policy set with the
// posted JSON array. The whole set validates or nothing is installed; an
// empty array turns feedback control off.
func (s *Server) handlePoliciesPost(w http.ResponseWriter, r *http.Request) {
	as, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var ps []ctl.Policy
	if err := json.NewDecoder(r.Body).Decode(&ps); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad policies body: %v", err)})
		return
	}
	// ctl validates shape; the serve layer additionally owns the level
	// names, so resolve set-period levels here where 400 is still cheap.
	for _, p := range ps {
		if p.Action.Type == ctl.ActSetPeriod {
			if _, err := parseLevel(p.Action.Level); err != nil {
				writeJSON(w, http.StatusBadRequest,
					map[string]string{"error": fmt.Sprintf("policy %q: %v", p.Name, err)})
				return
			}
		}
	}
	if err := as.ctl.SetPolicies(ps); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "installed": len(ps)})
}

// healthReply is the /healthz body.
type healthReply struct {
	Status        string     `json:"status"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Subscribers   int        `json:"subscribers"`
	Assemblies    []Snapshot `json:"assemblies"`
}

// handleHealthz reports liveness: 200 while at least the service itself is
// healthy, 503 when any assembly has been parked by repeated generation
// failures (Stopped with a LastErr) — the condition an operator must act
// on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := healthReply{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Subscribers:   s.broker.Subscribers(),
		Assemblies:    []Snapshot{},
	}
	status := http.StatusOK
	for _, as := range s.Assemblies() {
		snap := as.Snapshot()
		rep.Assemblies = append(rep.Assemblies, snap)
		if snap.Stopped && snap.LastErr != "" {
			rep.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, rep)
}
