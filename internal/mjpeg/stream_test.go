package mjpeg

import (
	"testing"
)

func synthStream(t *testing.T, w, h, count int, opts EncodeOptions) []byte {
	t.Helper()
	data, err := SynthStream(w, h, count, opts)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSplitStreamCounts(t *testing.T) {
	data := synthStream(t, 48, 32, 5, EncodeOptions{Quality: 80})
	frames, err := SplitStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("frames = %d, want 5", len(frames))
	}
	// Every frame decodes and has the right geometry.
	for i, f := range frames {
		img, err := Decode(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if img.W != 48 || img.H != 32 {
			t.Fatalf("frame %d: %dx%d", i, img.W, img.H)
		}
	}
}

func TestSplitStreamWithRestartMarkers(t *testing.T) {
	// Restart markers put 0xFFDn sequences inside scans; the splitter must
	// not be confused by them.
	data := synthStream(t, 48, 48, 3, EncodeOptions{Quality: 80, RestartInterval: 2})
	frames, err := SplitStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
}

func TestSplitStreamRejectsGarbage(t *testing.T) {
	if _, err := SplitStream(nil); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := SplitStream([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	good := synthStream(t, 16, 16, 1, EncodeOptions{})
	if _, err := SplitStream(good[:len(good)-2]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := SplitStream(append(good, 0xAB)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestFramesAreIndependent(t *testing.T) {
	// "a stream of independent and individually encoded JPEG images":
	// decoding frame k must not need frame k-1.
	data := synthStream(t, 32, 32, 3, EncodeOptions{Quality: 85})
	frames, err := SplitStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frames[2]); err != nil {
		t.Fatalf("frame 2 alone: %v", err)
	}
}

func TestStagedPipelineMatchesReferenceDecode(t *testing.T) {
	// Fetch -> IDCT -> Reorder staging must reproduce the monolithic decode
	// bit-for-bit.
	frame, err := Encode(SynthFrame(48, 40, 6), EncodeOptions{Quality: 88})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}

	h, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, err := h.DecodeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := SplitBlocks(0, h, coeffs, 18)
	if err != nil {
		t.Fatal(err)
	}
	asm := NewFrameAssembler()
	var got *Image
	// Deliver groups out of order, as three parallel IDCTs would.
	order := []int{17, 3, 0, 12, 5, 9, 1, 16, 7, 2, 11, 4, 14, 6, 13, 8, 15, 10}
	for _, gi := range order {
		pg := TransformGroup(&groups[gi])
		img, err := asm.Add(&pg)
		if err != nil {
			t.Fatal(err)
		}
		if img != nil {
			got = img
		}
	}
	if got == nil {
		t.Fatal("assembler never completed the frame")
	}
	if MaxAbsDiff(want, got) != 0 {
		t.Error("staged pipeline differs from reference decode")
	}
	if asm.Completed != 1 || asm.PendingFrames() != 0 {
		t.Errorf("assembler state: completed=%d pending=%d", asm.Completed, asm.PendingFrames())
	}
}

func TestSplitBlocksPartition(t *testing.T) {
	frame, err := Encode(SynthFrame(48, 48, 0), EncodeOptions{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, err := h.DecodeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := SplitBlocks(0, h, coeffs, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 18 {
		t.Fatalf("groups = %d", len(groups))
	}
	total := 0
	for gi, g := range groups {
		if g.GroupIndex != gi || g.NumGroups != 18 || g.Header != h {
			t.Fatalf("group %d metadata wrong", gi)
		}
		if g.PayloadBytes() != len(g.Blocks)*(64*2+8) {
			t.Fatalf("payload bytes wrong")
		}
		total += len(g.Blocks)
	}
	if total != len(coeffs) {
		t.Fatalf("partition lost blocks: %d of %d", total, len(coeffs))
	}
	// Near-equal split: sizes differ by at most one block.
	min, max := len(coeffs), 0
	for _, g := range groups {
		if len(g.Blocks) < min {
			min = len(g.Blocks)
		}
		if len(g.Blocks) > max {
			max = len(g.Blocks)
		}
	}
	if max-min > 1 {
		t.Errorf("unbalanced split: min %d max %d", min, max)
	}
}

func TestSplitBlocksEdgeCases(t *testing.T) {
	frame, _ := Encode(SynthFrame(16, 16, 0), EncodeOptions{})
	h, _ := ParseFrame(frame)
	coeffs, _ := h.DecodeBlocks()
	if _, err := SplitBlocks(0, h, coeffs, 0); err == nil {
		t.Error("zero groups accepted")
	}
	// More groups than blocks degrades gracefully to one block per group.
	groups, err := SplitBlocks(0, h, coeffs, len(coeffs)+50)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(coeffs) {
		t.Errorf("groups = %d, want %d", len(groups), len(coeffs))
	}
}

func TestAssemblerRejectsMismatchedGroupCounts(t *testing.T) {
	frame, _ := Encode(SynthFrame(16, 16, 0), EncodeOptions{})
	h, _ := ParseFrame(frame)
	coeffs, _ := h.DecodeBlocks()
	groups, _ := SplitBlocks(0, h, coeffs, 2)
	asm := NewFrameAssembler()
	pg := TransformGroup(&groups[0])
	if _, err := asm.Add(&pg); err != nil {
		t.Fatal(err)
	}
	bad := TransformGroup(&groups[1])
	bad.NumGroups = 7
	if _, err := asm.Add(&bad); err == nil {
		t.Error("mismatched NumGroups accepted")
	}
}

func TestAssembleFrameRejectsBadBlocks(t *testing.T) {
	frame, _ := Encode(SynthFrame(16, 16, 0), EncodeOptions{})
	h, _ := ParseFrame(frame)
	coeffs, _ := h.DecodeBlocks()
	pix := make([]PixelBlock, len(coeffs))
	for i := range coeffs {
		pix[i] = h.TransformBlock(&coeffs[i])
	}
	if _, err := h.AssembleFrame(pix[:len(pix)-1]); err == nil {
		t.Error("missing block accepted")
	}
	dup := append([]PixelBlock(nil), pix...)
	dup[1] = dup[0]
	if _, err := h.AssembleFrame(dup); err == nil {
		t.Error("duplicate block accepted")
	}
	bad := append([]PixelBlock(nil), pix...)
	bad[0].Comp = 9
	if _, err := h.AssembleFrame(bad); err == nil {
		t.Error("unknown component accepted")
	}
	oob := append([]PixelBlock(nil), pix...)
	oob[0].BX = 1 << 20
	if _, err := h.AssembleFrame(oob); err == nil {
		t.Error("out-of-plane block accepted")
	}
}

func TestHeaderGeometry(t *testing.T) {
	frame, _ := Encode(SynthFrame(48, 40, 0), EncodeOptions{Quality: 80})
	h, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumComponents() != 3 {
		t.Errorf("components = %d", h.NumComponents())
	}
	mx, my := h.MCUs()
	if mx != 6 || my != 5 { // 48/8 x 40/8 at 4:4:4
		t.Errorf("MCUs = %dx%d", mx, my)
	}
	if h.TotalBlocks() != 6*5*3 {
		t.Errorf("total blocks = %d", h.TotalBlocks())
	}
	if h.ScanBytes() <= 0 {
		t.Error("no scan bytes")
	}
}

func TestSynthFrameDeterministic(t *testing.T) {
	a := SynthFrame(32, 24, 7)
	b := SynthFrame(32, 24, 7)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("SynthFrame not deterministic")
	}
	c := SynthFrame(32, 24, 8)
	if MaxAbsDiff(a, c) == 0 {
		t.Error("consecutive frames identical")
	}
}

func TestSynthStreamDeterministic(t *testing.T) {
	a := synthStream(t, 24, 24, 3, EncodeOptions{Quality: 77})
	b := synthStream(t, 24, 24, 3, EncodeOptions{Quality: 77})
	if len(a) != len(b) {
		t.Fatal("stream lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("streams differ")
		}
	}
}
