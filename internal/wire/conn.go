package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"embera/internal/monitor"
)

// Conn frames an underlying byte stream (TCP or unix socket). Writes are
// serialized under a mutex into a reusable buffer, so concurrent flows can
// share one conn; reads are single-reader (each peer runs one reader
// goroutine). The frame counters make the wire itself observable: the
// conformance flow invariant counts frames alongside message operations,
// and the cluster machine reports them as in-flight losses when a worker
// dies.
type Conn struct {
	rw io.ReadWriteCloser

	wmu  sync.Mutex
	wbuf []byte

	rbuf []byte
	rhdr [4]byte

	framesOut atomic.Uint64
	framesIn  atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps rw in frame framing.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw}
}

// WriteFrame encodes and writes one frame. Safe for concurrent use.
func (c *Conn) WriteFrame(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := AppendFrame(c.wbuf[:0], f)
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	if _, err := c.rw.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame type %d: %w", f.Type, err)
	}
	c.framesOut.Add(1)
	return nil
}

// ReadFrame reads and decodes the next frame into f. Only one goroutine may
// read. io.EOF is returned unwrapped on a clean end of stream.
func (c *Conn) ReadFrame(f *Frame) error {
	if _, err := io.ReadFull(c.rw, c.rhdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(c.rhdr[:])
	if n == 0 || n > MaxFrameBytes {
		return fmt.Errorf("wire: frame body of %d bytes out of range (max %d)", n, MaxFrameBytes)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	body := c.rbuf[:n]
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return fmt.Errorf("wire: read frame body: %w", err)
	}
	if err := DecodeFrame(body, f); err != nil {
		return err
	}
	c.framesIn.Add(1)
	return nil
}

// Close tears the underlying stream down. Idempotent: concurrent teardown
// paths (orchestrator shutdown racing a reader error) share one close.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.rw.Close() })
	return c.closeErr
}

// FramesOut reports frames successfully written.
func (c *Conn) FramesOut() uint64 { return c.framesOut.Load() }

// FramesIn reports frames successfully read and decoded.
func (c *Conn) FramesIn() uint64 { return c.framesIn.Load() }

// WindowSink is the remote monitor sink flavor: each window the worker's
// pump flushes is framed and written to the coordinator, which ingests it
// into its own monitor so sharded windows join the same WindowRecord stream
// embera-serve already brokers. It satisfies monitor.Sink.
type WindowSink struct {
	conn  *Conn
	shard uint32
}

// NewWindowSink builds the remote sink for one worker's monitor.
func NewWindowSink(conn *Conn, shard int) *WindowSink {
	return &WindowSink{conn: conn, shard: uint32(shard)}
}

// WriteWindow implements monitor.Sink.
func (s *WindowSink) WriteWindow(w monitor.WindowStats) error {
	f := Frame{Type: TypeWindows, Shard: s.shard, Windows: []monitor.WindowStats{w}}
	return s.conn.WriteFrame(&f)
}
