// Package embera reproduces "Towards a Component-based Observation of
// MPSoC" (Prada-Rojas, Marangonzova-Martin, Georgiev, Méhaut, Santana —
// INRIA RR-6905 / ICPP 2009): the EMBera component model for multi-level
// observation of MPSoC applications, together with both evaluation
// platforms rebuilt as deterministic simulations and the full experiment
// suite.
//
// See README.md for the package layout, including the platform
// abstraction layer and workload registry of internal/platform (one
// harness, any platform × any workload — with an "adding a platform /
// adding a workload" how-to) and the streaming observation pipeline of
// internal/monitor. The root package carries only documentation and the
// top-level benchmarks (bench_test.go); all code lives under internal/,
// the executables under cmd/ and the runnable examples under examples/.
package embera
