package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"
)

// metricWriter accumulates one Prometheus text exposition. Hand-rolled on
// the stdlib — the repository takes no dependencies — and covering just
// what the scrape needs: HELP/TYPE headers, label escaping, gauges and
// counters.
type metricWriter struct {
	b strings.Builder
}

func (mw *metricWriter) header(name, help, typ string) {
	fmt.Fprintf(&mw.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], escapeLabel(kv[i+1])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (mw *metricWriter) sample(name, labelSet string, v float64) {
	fmt.Fprintf(&mw.b, "%s%s %g\n", name, labelSet, v)
}

// handleMetrics renders the Prometheus exposition: per-assembly run and
// pipeline counters, the latest window aggregates per component as gauges,
// and the service's self-metrics — broker and subscriber accounting plus
// goroutine/heap gauges — so the observation service's own overhead and
// loss are as visible as the observed application's.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := &metricWriter{}

	// Service self-metrics.
	mw.header("embera_serve_uptime_seconds", "Seconds since the server started.", "gauge")
	mw.sample("embera_serve_uptime_seconds", "", time.Since(s.start).Seconds())
	mw.header("embera_serve_goroutines", "Live goroutines in the serving process.", "gauge")
	mw.sample("embera_serve_goroutines", "", float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mw.header("embera_serve_heap_alloc_bytes", "Live heap bytes of the serving process.", "gauge")
	mw.sample("embera_serve_heap_alloc_bytes", "", float64(ms.HeapAlloc))
	mw.header("embera_serve_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge")
	mw.sample("embera_serve_heap_sys_bytes", "", float64(ms.HeapSys))

	// Broker accounting: the service's own bounded-loss contract.
	b := s.broker
	mw.header("embera_serve_subscribers", "Currently connected window subscribers.", "gauge")
	mw.sample("embera_serve_subscribers", "", float64(b.Subscribers()))
	mw.header("embera_serve_events_published_total", "Window events offered to the broker.", "counter")
	mw.sample("embera_serve_events_published_total", "", float64(b.Published()))
	mw.header("embera_serve_subscriber_dropped_aggregate_total",
		"Events shed across all subscribers, past and present.", "counter")
	mw.sample("embera_serve_subscriber_dropped_aggregate_total", "", float64(b.Dropped()))

	subs := b.SubscriberSnapshots()
	sort.Slice(subs, func(i, j int) bool { return subs[i].ID < subs[j].ID })
	mw.header("embera_serve_subscriber_matched_total", "Events matching the subscriber's filter.", "counter")
	for _, ss := range subs {
		mw.sample("embera_serve_subscriber_matched_total",
			labels("subscriber", fmt.Sprint(ss.ID), "filter", ss.Filter), float64(ss.Matched))
	}
	mw.header("embera_serve_subscriber_dropped_total",
		"Matching events shed because the subscriber's queue was full.", "counter")
	for _, ss := range subs {
		mw.sample("embera_serve_subscriber_dropped_total",
			labels("subscriber", fmt.Sprint(ss.ID), "filter", ss.Filter), float64(ss.Dropped))
	}

	// Per-assembly run and observation-pipeline counters.
	assemblies := s.Assemblies()
	mw.header("embera_serve_assembly_running", "1 while a generation is executing.", "gauge")
	mw.header("embera_serve_assembly_paused", "1 while sampling is paused.", "gauge")
	mw.header("embera_serve_generations_total", "Workload generations launched.", "counter")
	mw.header("embera_serve_units_total", "Workload units completed across generations.", "counter")
	mw.header("embera_serve_windows_total", "Observation windows published.", "counter")
	mw.header("embera_serve_samples_total", "Observation samples accepted by the ring.", "counter")
	mw.header("embera_serve_ring_dropped_total", "Observation samples shed by the ring.", "counter")
	mw.header("embera_serve_sink_errors_total", "Window writes rejected by a sink.", "counter")
	mw.header("embera_serve_monitor_period_us",
		"Configured sampling period (µs) per observation level.", "gauge")
	mw.header("embera_serve_monitor_effective_period_us",
		"Sampling period (µs) each sampler is actually running at: above the configured "+
			"period when the adaptive overhead controller has backed it off under load.", "gauge")
	mw.header("embera_serve_monitor_overhead_budget_pct",
		"Configured adaptive sampling budget (percent of host time per sampler; 0 = off).", "gauge")
	mw.header("embera_ctl_policies", "Feedback policies installed on the assembly.", "gauge")
	mw.header("embera_ctl_actions_taken_total", "Policy actions fired by the feedback controller.", "counter")
	mw.header("embera_ctl_actions_suppressed_total", "Policy matches swallowed by cooldown hysteresis.", "counter")
	mw.header("embera_ctl_action_errors_total", "Fired actions the executor failed to apply.", "counter")
	mw.header("embera_ctl_firings_dropped_total", "Firings shed because the executor queue was full.", "counter")
	for _, as := range assemblies {
		snap := as.Snapshot()
		l := labels("assembly", snap.ID, "platform", snap.Platform, "workload", snap.Workload)
		bool01 := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		mw.sample("embera_serve_assembly_running", l, bool01(snap.Running))
		mw.sample("embera_serve_assembly_paused", l, bool01(snap.Paused))
		mw.sample("embera_serve_generations_total", l, float64(snap.Generations))
		mw.sample("embera_serve_units_total", l, float64(snap.Units))
		mw.sample("embera_serve_windows_total", l, float64(snap.Windows))
		mw.sample("embera_serve_samples_total", l, float64(snap.Samples))
		mw.sample("embera_serve_ring_dropped_total", l, float64(snap.RingDropped))
		mw.sample("embera_serve_sink_errors_total", l, float64(snap.SinkErrors))
		for _, lv := range snap.Levels {
			mw.sample("embera_serve_monitor_period_us",
				labels("assembly", snap.ID, "level", lv.Level), float64(lv.PeriodUS))
		}
		for _, lv := range snap.EffectiveLevels {
			mw.sample("embera_serve_monitor_effective_period_us",
				labels("assembly", snap.ID, "level", lv.Level), float64(lv.PeriodUS))
		}
		mw.sample("embera_serve_monitor_overhead_budget_pct", l, snap.OverheadBudgetPct)
		fired, suppressed, execErrs := as.Ctl().Counters()
		mw.sample("embera_ctl_policies", l, float64(len(as.Ctl().Policies())))
		mw.sample("embera_ctl_actions_taken_total", l, float64(fired))
		mw.sample("embera_ctl_actions_suppressed_total", l, float64(suppressed))
		mw.sample("embera_ctl_action_errors_total", l, float64(execErrs))
		mw.sample("embera_ctl_firings_dropped_total", l, float64(as.FiringsDropped()))
	}

	// Latest window aggregates per component: the paper's observation
	// levels as scrapable gauges — operation rates, percentile latencies
	// and mailbox fill from the most recent closed window.
	type g struct{ name, help string }
	gauges := []g{
		{"embera_window_send_rate", "Send operations per second in the latest window."},
		{"embera_window_recv_rate", "Receive operations per second in the latest window."},
		{"embera_window_latency_p50_us", "p50 send-receive latency (µs) in the latest window."},
		{"embera_window_latency_p95_us", "p95 send-receive latency (µs) in the latest window."},
		{"embera_window_latency_p99_us", "p99 send-receive latency (µs) in the latest window."},
		{"embera_window_depth_high", "Mailbox-depth high-water mark in the latest window."},
		{"embera_window_depth_p99", "p99 mailbox depth in the latest window."},
		{"embera_window_mem_high_bytes", "Memory-occupation high-water mark in the latest window."},
	}
	for _, gg := range gauges {
		mw.header(gg.name, gg.help, "gauge")
	}
	for _, as := range assemblies {
		recs := as.LastWindows()
		sort.Slice(recs, func(i, j int) bool { return recs[i].Component < recs[j].Component })
		for _, rec := range recs {
			l := labels("assembly", as.ID(), "component", rec.Component)
			mw.sample("embera_window_send_rate", l, rec.SendRate)
			mw.sample("embera_window_recv_rate", l, rec.RecvRate)
			mw.sample("embera_window_latency_p50_us", l, float64(rec.LatencyP50US))
			mw.sample("embera_window_latency_p95_us", l, float64(rec.LatencyP95US))
			mw.sample("embera_window_latency_p99_us", l, float64(rec.LatencyP99US))
			mw.sample("embera_window_depth_high", l, float64(rec.DepthHigh))
			mw.sample("embera_window_depth_p99", l, float64(rec.DepthP99))
			mw.sample("embera_window_mem_high_bytes", l, float64(rec.MemHighBytes))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(mw.b.String()))
}
