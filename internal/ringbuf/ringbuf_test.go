package ringbuf

import "testing"

func TestPopFrontFIFO(t *testing.T) {
	var buf []int
	head := 0
	for i := 0; i < 100; i++ {
		buf = append(buf, i)
	}
	for i := 0; i < 100; i++ {
		var v int
		v, buf, head = PopFront(buf, head)
		if v != i {
			t.Fatalf("popped %d, want %d", v, i)
		}
	}
	if len(buf) != head {
		t.Fatalf("buffer not drained: len=%d head=%d", len(buf), head)
	}
}

func TestPopFrontResetsWhenDrained(t *testing.T) {
	buf := []string{"a", "b"}
	head := 0
	_, buf, head = PopFront(buf, head)
	_, buf, head = PopFront(buf, head)
	if len(buf) != 0 || head != 0 {
		t.Fatalf("drained buffer not reset: len=%d head=%d", len(buf), head)
	}
}

func TestPopFrontZeroesVacatedSlot(t *testing.T) {
	buf := []*int{new(int), new(int)}
	head := 0
	_, buf, head = PopFront(buf, head)
	if head != 1 || buf[0] != nil {
		t.Fatalf("vacated slot retains reference: head=%d buf[0]=%v", head, buf[0])
	}
}

// TestPopFrontStaysBounded is the leak guard: a FIFO that always holds one
// resident element never hits the reset-on-empty, so without compaction the
// backing array would grow by one slot per push forever.
func TestPopFrontStaysBounded(t *testing.T) {
	var buf []int
	head := 0
	buf = append(buf, -1) // resident element
	for i := 0; i < 100_000; i++ {
		buf = append(buf, i)
		_, buf, head = PopFront(buf, head)
	}
	if live := len(buf) - head; live != 1 {
		t.Fatalf("live = %d, want the single resident element", live)
	}
	if cap(buf) > 4*compactAt {
		t.Fatalf("backing array grew to %d slots for a depth-1 FIFO, want O(depth)", cap(buf))
	}
}

func TestPopFrontZeroAlloc(t *testing.T) {
	buf := make([]int, 0, 8)
	head := 0
	buf = append(buf, 1)
	if allocs := testing.AllocsPerRun(1000, func() {
		buf = append(buf, 2)
		_, buf, head = PopFront(buf, head)
	}); allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %v per op, want 0", allocs)
	}
}
