package replaywl_test

import (
	"os"
	"testing"

	"embera/internal/cluster"
)

// TestMain lets this test binary double as a cluster worker: replay cells
// running on the cluster platform re-exec the binary once per shard.
func TestMain(m *testing.M) {
	cluster.MaybeWorkerMain()
	os.Exit(m.Run())
}
