package monitor

import (
	"sync"
	"testing"
)

func sample(comp string, t int64) Sample {
	s := Sample{TimeUS: t}
	s.Component = comp
	return s
}

func TestRingCapacitySplit(t *testing.T) {
	r := NewRing(5, 2)
	if r.Capacity() != 5 {
		t.Fatalf("capacity = %d, want 5", r.Capacity())
	}
	if r.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", r.Shards())
	}
	// More shards than capacity collapses to one slot per shard.
	r = NewRing(2, 8)
	if r.Shards() != 2 || r.Capacity() != 2 {
		t.Fatalf("shards/capacity = %d/%d, want 2/2", r.Shards(), r.Capacity())
	}
}

// TestRingOverflow checks the oldest-wins overflow contract: a full shard
// sheds the incoming (newest) sample, counts it, and keeps the buffered
// (oldest) ones intact.
func TestRingOverflow(t *testing.T) {
	r := NewRing(4, 1)
	for i := int64(0); i < 7; i++ {
		pushed := r.Push(0, sample("A", i))
		if want := i < 4; pushed != want {
			t.Fatalf("push %d: pushed=%v, want %v", i, pushed, want)
		}
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	var times []int64
	r.Drain(func(s Sample) { times = append(times, s.TimeUS) })
	for i, tm := range times {
		if tm != int64(i) {
			t.Fatalf("drained[%d].TimeUS = %d, want %d (oldest retained, FIFO)", i, tm, i)
		}
	}
	// After a drain, the shard admits samples again and keeps counting
	// prior drops.
	if !r.Push(0, sample("A", 99)) {
		t.Fatal("push after drain rejected")
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped after drain = %d, want 3", got)
	}
}

func TestRingShardIsolation(t *testing.T) {
	r := NewRing(4, 2) // 2 slots per shard
	// Fill shard 0; shard 1 must still accept.
	if !r.Push(0, sample("A", 0)) || !r.Push(0, sample("A", 1)) {
		t.Fatal("shard 0 rejected while under capacity")
	}
	if r.Push(0, sample("A", 2)) {
		t.Fatal("shard 0 accepted past its slice of the capacity")
	}
	if !r.Push(1, sample("B", 0)) {
		t.Fatal("shard 1 rejected although empty")
	}
	if got := r.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestRingConcurrent hammers the ring under its SPSC contract — one
// producer goroutine per shard, pushing as fast as it can — while the
// single drainer runs concurrently, verifying the accounting identity
// pushed = drained + dropped and that buffered memory never exceeds
// capacity. Run with -race this also validates the lock-free cursor
// protocol: producer slot writes must be ordered by the tail release, and
// the drainer's slot reads and clears by the head release.
func TestRingConcurrent(t *testing.T) {
	const (
		producers = 4 // one per shard: the single-producer-per-shard contract
		perProd   = 2000
	)
	r := NewRing(64, producers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < perProd; i++ {
				if r.Push(p, sample("A", int64(i))) {
					n++
				}
			}
			mu.Lock()
			accepted += n
			mu.Unlock()
		}()
	}
	prodDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(prodDone)
	}()
	drained := 0
	drainerDone := make(chan struct{})
	go func() {
		defer close(drainerDone)
		for {
			if n := r.Len(); n > r.Capacity() {
				t.Errorf("ring over capacity: %d > %d", n, r.Capacity())
			}
			drained += r.Drain(func(Sample) {})
			select {
			case <-prodDone:
				drained += r.Drain(func(Sample) {})
				return
			default:
			}
		}
	}()
	<-drainerDone
	if accepted != drained {
		t.Fatalf("accepted %d != drained %d", accepted, drained)
	}
	if got := int(r.Dropped()) + accepted; got != producers*perProd {
		t.Fatalf("dropped+accepted = %d, want %d", got, producers*perProd)
	}
}
