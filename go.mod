module embera

go 1.24
