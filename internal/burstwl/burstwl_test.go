package burstwl

import (
	"strings"
	"testing"
)

func TestParseSpecSeededForm(t *testing.T) {
	s, err := ParseSpec("42")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Errorf("seed = %d, want 42", s.Seed)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("generated spec invalid: %v", err)
	}
	again, err := ParseSpec("42")
	if err != nil {
		t.Fatal(err)
	}
	if *s != *again {
		t.Errorf("seeded parse not deterministic: %+v vs %+v", s, again)
	}
}

func TestParseSpecExplicitForm(t *testing.T) {
	s, err := ParseSpec("clients=3,servers=4,fanout=2,rate=12500,mode=onoff")
	if err != nil {
		t.Fatal(err)
	}
	if s.Clients != 3 || s.Servers != 4 || s.Fanout != 2 || s.RateHz != 12500 || s.Mode != ModeOnOff {
		t.Errorf("explicit keys not applied: %+v", s)
	}
	if s.Reqs == 0 || s.Bytes == 0 || s.Cap == 0 {
		t.Errorf("omitted keys lost their defaults: %+v", s)
	}
}

func TestArgRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		s := NewSpec(seed)
		again, err := ParseSpec(s.Arg())
		if err != nil {
			t.Fatalf("seed %d: canonical arg rejected: %v", seed, err)
		}
		if *s != *again {
			t.Errorf("seed %d: Arg round trip changed the spec: %+v vs %+v", seed, s, again)
		}
	}
}

func TestParseSpecRejectsMalformedSpecs(t *testing.T) {
	for _, tc := range []struct{ arg, want string }{
		{"rate=-1", "rate=-1 out of range"},
		{"rate=0", "rate=0 out of range"},
		{"-7", "must be non-negative"},
		{"clients=0", "clients=0 out of range"},
		{"fanout=5,servers=3", "fanout=5 out of range"},
		{"mode=sawtooth", `mode "sawtooth"`},
		{"bogus=1", `unknown key "bogus"`},
		{"rate", "not key=value"},
		{"reqs=twelve", "not an integer"},
	} {
		_, err := ParseSpec(tc.arg)
		if err == nil {
			t.Errorf("%q accepted", tc.arg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q lacks %q", tc.arg, err, tc.want)
		}
	}
}

func TestClientScheduleShape(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		s := NewSpec(seed)
		for c := 0; c < s.Clients; c++ {
			sched := s.ClientSchedule(c)
			again := s.ClientSchedule(c)
			if len(sched.GapsUS) != s.Reqs || len(sched.Targets) != s.Reqs {
				t.Fatalf("seed %d client %d: schedule covers %d/%d of %d reqs",
					seed, c, len(sched.GapsUS), len(sched.Targets), s.Reqs)
			}
			for q := 0; q < s.Reqs; q++ {
				if sched.GapsUS[q] < 0 {
					t.Errorf("seed %d client %d req %d: negative gap %d", seed, c, q, sched.GapsUS[q])
				}
				if sched.GapsUS[q] != again.GapsUS[q] {
					t.Fatalf("seed %d client %d: schedule not deterministic", seed, c)
				}
				targets := sched.Targets[q]
				if len(targets) != s.Fanout {
					t.Fatalf("seed %d client %d req %d: %d targets, want fanout %d",
						seed, c, q, len(targets), s.Fanout)
				}
				seen := map[int]bool{}
				for _, srv := range targets {
					if srv < 0 || srv >= s.Servers || seen[srv] {
						t.Fatalf("seed %d client %d req %d: bad target set %v", seed, c, q, targets)
					}
					seen[srv] = true
				}
			}
		}
	}
}

func TestClosedFormsAgree(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		s := NewSpec(seed)
		units, _ := s.Expected()
		if want := s.Clients * s.Reqs * s.Fanout; units != want {
			t.Errorf("seed %d: expected units %d, want clients×reqs×fanout = %d", seed, units, want)
		}
		toServer, toCollector := s.EdgeOps()
		var reqSends, respSends uint64
		for c := range toServer {
			for _, ops := range toServer[c] {
				reqSends += ops
			}
		}
		for _, ops := range toCollector {
			respSends += ops
		}
		if int(reqSends) != units || int(respSends) != units {
			t.Errorf("seed %d: edge ops %d/%d disagree with units %d", seed, reqSends, respSends, units)
		}
		if total := s.TotalSends(); total != int(reqSends+respSends) {
			t.Errorf("seed %d: TotalSends %d != %d", seed, total, reqSends+respSends)
		}
	}
}

func TestNameAndRepro(t *testing.T) {
	if got := Name(9); got != "burst:9" {
		t.Errorf("Name = %q", got)
	}
	if got := ReproCommand(9); got != "embera-bench -exp BURST -seed 9" {
		t.Errorf("ReproCommand = %q", got)
	}
	if got := New(9).Name(); got != "burst:9" {
		t.Errorf("Workload.Name = %q", got)
	}
}
