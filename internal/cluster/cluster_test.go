package cluster_test

import (
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"embera/internal/cluster"
	"embera/internal/core"
	"embera/internal/exp"
	"embera/internal/monitor"
	"embera/internal/pipelineapp"
	"embera/internal/platform"
)

// TestMain lets this test binary serve as a cluster worker shard: the
// coordinator re-execs its own executable once per shard. A normal test run
// passes straight through.
func TestMain(m *testing.M) {
	cluster.MaybeWorkerMain()
	os.Exit(m.Run())
}

func TestShardOfDeterministicAndBounded(t *testing.T) {
	names := []string{"Source", "Sink", "S1W1", "S1W2", "c0", "c17", ""}
	for _, shards := range []int{1, 2, 3, 7} {
		for _, n := range names {
			s := cluster.ShardOf(n, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", n, shards, s)
			}
			if again := cluster.ShardOf(n, shards); again != s {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", n, shards, s, again)
			}
		}
	}
	if s := cluster.ShardOf("anything", 0); s != 0 {
		t.Errorf("ShardOf with 0 shards = %d, want 0", s)
	}
	// At least two of the pipeline names must land on different shards with
	// 2 shards — otherwise the multi-process battery degenerates.
	spread := map[int]bool{}
	for _, n := range names {
		spread[cluster.ShardOf(n, 2)] = true
	}
	if len(spread) < 2 {
		t.Errorf("placement sent every name to one shard: %v", spread)
	}
}

// TestLocalFallbackRunsInProcess: without Distribute the machine is a
// cluster of one — a transparent native run, no processes, no sockets.
func TestLocalFallbackRunsInProcess(t *testing.T) {
	m, a := cluster.New("fallback", 2, 4)
	cfg := pipelineapp.DefaultConfig()
	cfg.Messages = 50
	app, err := pipelineapp.Build(a, cfg, platform.MustGet("cluster").Topology())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(60e6); err != nil {
		t.Fatal(err)
	}
	if pids := m.WorkerPIDs(); len(pids) != 0 {
		t.Errorf("local fallback spawned workers: %v", pids)
	}
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoWorkerPipelineEndToEnd is the acceptance run: a 2-worker sharded
// pipeline over real sockets through the full exp harness, with monitor
// windows aggregated centrally — the checksum must match the closed-form
// model and every worker-side sample must land in exactly one ingested
// window (exact samples == windowed across processes).
func TestTwoWorkerPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	p := platform.MustGet("cluster")
	w := platform.MustGetWorkload("pipeline")
	const messages = 5000
	run, err := exp.Run(p, w, exp.Options{
		Options: platform.Options{Scale: messages},
		Monitor: &monitor.Config{
			Levels:   []monitor.LevelPeriod{{Level: core.LevelApplication, PeriodUS: 200}},
			WindowUS: 2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipelineapp.DefaultConfig()
	cfg.Messages = messages
	if got, want := run.Instance.Checksum(), pipelineapp.Expected(cfg); got != want {
		t.Errorf("sharded checksum %016x, want %016x", got, want)
	}
	if got := run.Instance.Units(); got != messages {
		t.Errorf("sharded units %d, want %d", got, messages)
	}
	if lf, ok := run.Machine.(interface{ LostFrames() uint64 }); !ok {
		t.Error("cluster machine does not expose LostFrames")
	} else if n := lf.LostFrames(); n != 0 {
		t.Errorf("clean run lost %d frames", n)
	}
	// Central aggregation: the coordinator's monitor holds every worker
	// window, and its accepted-sample counter equals the windowed sum.
	var windowed int
	for _, win := range run.Monitor.Windows() {
		windowed += win.Samples
	}
	if accepted := run.Monitor.Samples(); uint64(windowed) != accepted {
		t.Errorf("monitor: %d samples accepted but %d aggregated into windows", accepted, windowed)
	}
	if run.Monitor.Samples() == 0 {
		t.Error("no samples crossed the process boundary")
	}
	// Every windowed component is a real component of the assembly.
	for _, tot := range run.Monitor.Totals() {
		if _, ok := run.Reports[tot.Component]; !ok {
			t.Errorf("window for unknown component %q", tot.Component)
		}
	}
}

// TestWorkerKillMidRunFailsCleanly kills the worker owning the pipeline
// Source mid-run: Run must return promptly with an error naming the worker
// (counting any in-flight losses), not hang and not double-close anything.
func TestWorkerKillMidRunFailsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m, a := cluster.New("killtest", 2, 4)
	p := platform.MustGet("cluster")
	w := platform.MustGetWorkload("pipeline")
	const messages = 2_000_000 // far more than can drain before the kill
	inst, err := w.Build(a, p, platform.Options{Scale: messages})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Distribute("pipeline", messages, 0, nil, inst); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- m.Run(120e6) }()

	// Wait for both workers, let the pipeline flow, then kill the shard
	// that owns the Source so production stops with messages in flight.
	var pids []int
	deadline := time.Now().Add(30 * time.Second)
	for len(pids) < 2 && time.Now().Before(deadline) {
		pids = m.WorkerPIDs()
		time.Sleep(10 * time.Millisecond)
	}
	if len(pids) < 2 {
		t.Fatal("workers never launched")
	}
	time.Sleep(300 * time.Millisecond)
	victim := m.ShardOf("Source")
	if err := syscall.Kill(pids[victim], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("worker killed mid-run but Run returned nil")
		}
		if !strings.Contains(err.Error(), "worker") {
			t.Errorf("failure does not name the worker: %v", err)
		}
		if n := m.LostFrames(); n > 0 && !strings.Contains(err.Error(), "in-flight") {
			t.Errorf("%d frames lost but the error does not count them: %v", n, err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("cluster run hung after worker death")
	}
	if !a.Done() {
		t.Error("application never quiesced after worker death")
	}
}

// TestWorkerDeathDuringInFlightReconnect covers the reconfiguration edge the
// feedback controller leans on: a coordinator-side Reconnect attempted while
// the fleet is flowing must fail fast with the external-component rejection
// (cross-shard edges are rewired in their owning process, never through the
// coordinator's skeleton), and when a worker dies under that in-flight
// attempt the synthetic EdgeClose drain must still conserve flows — the
// survivors consume everything that was actually delivered, nothing is
// duplicated, and losses are exactly the in-flight frames.
func TestWorkerDeathDuringInFlightReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m, a := cluster.New("reconnkill", 2, 4)
	p := platform.MustGet("cluster")
	w := platform.MustGetWorkload("pipeline")
	const messages = 300_000
	inst, err := w.Build(a, p, platform.Options{Scale: messages})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Distribute("pipeline", messages, 0, nil, inst); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}

	// The victim shard must own neither the Source nor the Sink, so
	// production and consumption survive the kill and the drain has flows
	// left to conserve. With FNV placement over 2 shards that is the shard
	// owning S1W1; guard the assumption so a placement change fails loudly.
	victim := m.ShardOf("S1W1")
	if m.ShardOf("Source") == victim || m.ShardOf("Sink") == victim {
		t.Fatalf("placement moved: Source=%d Sink=%d S1W1=%d",
			m.ShardOf("Source"), m.ShardOf("Sink"), m.ShardOf("S1W1"))
	}

	runDone := make(chan error, 1)
	go func() { runDone <- m.Run(120e6) }()

	var pids []int
	deadline := time.Now().Add(30 * time.Second)
	for len(pids) < 2 && time.Now().Before(deadline) {
		pids = m.WorkerPIDs()
		time.Sleep(10 * time.Millisecond)
	}
	if len(pids) < 2 {
		t.Fatal("workers never launched")
	}
	time.Sleep(250 * time.Millisecond)

	// The in-flight reconnect: Source.out0 -> S1W1.in crosses shards, and on
	// the coordinator both endpoints are external. Issue it concurrently
	// with the kill — it must return promptly with the rejection, never
	// touch the wire star, and never install anything.
	src, _ := a.Component("Source")
	dst, _ := a.Component("S1W1")
	recErr := make(chan error, 1)
	go func() { recErr <- a.Reconnect(src, "out0", dst, "in") }()

	if err := syscall.Kill(pids[victim], syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-recErr:
		if err == nil {
			t.Fatal("coordinator-side reconnect of a cross-shard edge succeeded")
		}
		if !strings.Contains(err.Error(), "external component") {
			t.Errorf("reconnect rejection does not name the external component rule: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reconnect hung instead of failing fast")
	}

	var runErr error
	select {
	case runErr = <-runDone:
	case <-time.After(110 * time.Second):
		t.Fatal("cluster run hung after worker death during reconnect")
	}
	if runErr == nil {
		t.Fatal("worker killed mid-run but Run returned nil")
	}
	if !strings.Contains(runErr.Error(), "worker") {
		t.Errorf("failure does not name the worker: %v", runErr)
	}
	if !a.Done() {
		t.Error("application never quiesced after worker death")
	}

	// Flow conservation across the synthetic EdgeClose drain: the surviving
	// Sink consumed everything delivered to it, and every message is
	// accounted at most once — consumed or counted lost, never both, never
	// duplicated by the drain.
	units := inst.Units()
	lost := m.LostFrames()
	if units <= 0 {
		t.Error("surviving shard merged no units; the drain did not conserve delivered flows")
	}
	if uint64(units)+lost > messages {
		t.Errorf("conservation broken: %d consumed + %d lost > %d produced", units, lost, messages)
	}
	if lost == 0 {
		t.Error("no in-flight frames lost; the kill did not land mid-flow")
	}
	// No cross-shard edge relayed more frames than the model allows: each
	// producer alternates its outputs, so no edge can carry more than the
	// full message count.
	for _, e := range [][2]string{{"Source", "out0"}, {"S1W1", "out0"}, {"S1W2", "out1"}, {"S2W2", "out0"}} {
		if frames, remote := m.WireFrames(e[0], e[1]); remote && frames > messages {
			t.Errorf("edge %s.%s relayed %d frames for %d messages", e[0], e[1], frames, messages)
		}
	}
}

// TestServedClusterParksAndRestarts: a served cluster assembly must park on
// Stop (terminate broadcast drains the fleet) and a later Start must launch
// a fresh generation — new worker processes — that completes and passes the
// workload self-check.
func TestServedClusterParksAndRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	p := platform.MustGet("cluster")
	w := platform.MustGetWorkload("pipeline")
	sr, err := exp.RunServed(p, w, exp.ServedOptions{
		Options: exp.Options{Options: platform.Options{Scale: 800}},
		Pace:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()

	waitForCluster(t, "first generation to complete", func() bool {
		return sr.Stats().CompletedChecks >= 1
	})

	sr.Stop()
	waitForCluster(t, "assembly to park", func() bool {
		s := sr.Stats()
		return s.Stopped && !s.Running
	})
	parkedChecks := sr.Stats().CompletedChecks

	sr.Start()
	waitForCluster(t, "a fresh generation after restart", func() bool {
		return sr.Stats().CompletedChecks > parkedChecks
	})
	if s := sr.Stats(); s.LastErr != "" {
		t.Errorf("restarted assembly reports an error: %s", s.LastErr)
	}
}

func waitForCluster(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
