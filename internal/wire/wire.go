// Package wire is the length-prefixed frame protocol the cluster platform
// speaks over TCP or unix sockets: data messages crossing shard boundaries,
// control operations (producer close, termination, kill), monitor window
// records flowing back to the central aggregator, and the end-of-run report
// merge. The codec follows the trace codec's discipline — manual
// little-endian encoding into a caller-supplied buffer, fixed scratch
// bounds-checked decoding — so the per-message encode path allocates
// nothing for the scalar payloads the workloads actually send.
//
// Frame layout: a uint32 little-endian body length, then the body; the
// body's first byte is the frame type. Bodies longer than MaxFrameBytes are
// rejected on both ends, so a corrupt length prefix cannot make a reader
// allocate unbounded memory.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"

	"embera/internal/core"
	"embera/internal/monitor"
)

// Frame types.
const (
	TypeHello     = byte(iota + 1) // worker → coordinator: shard identity
	TypeData                       // message crossing a shard boundary
	TypeEdgeClose                  // producer of an edge terminated
	TypeWindows                    // batch of monitor windows from a worker
	TypeReports                    // worker's final observation reports + workload partials
	TypeShardDone                  // coordinator → workers: shard finished
	TypeTerminate                  // coordinator → workers: interrupt the run
	TypeCompKill                   // kill one named component on its owner
	TypeBye                        // worker → coordinator: clean goodbye
	TypeError                      // fatal error description
)

// MaxFrameBytes bounds a frame body. Large enough for any window batch or
// report set the monitor produces; small enough that a corrupt length
// prefix fails fast instead of exhausting memory.
const MaxFrameBytes = 64 << 20

// Payload kinds for TypeData. The scalar kinds cover every payload the
// bundled workloads send on their hot paths and encode without allocating;
// kindGob is the fallback for struct payloads (register concrete types with
// encoding/gob in the package that defines them).
const (
	kindNil = byte(iota)
	kindBool
	kindInt
	kindInt64
	kindUint64
	kindFloat64
	kindString
	kindBytes
	kindGob
)

// Frame is the decoded form of every frame type: a tagged union keyed on
// Type with only the fields that type uses populated.
type Frame struct {
	Type byte

	Shard uint32 // Hello, Windows, Reports, ShardDone
	Edge  uint32 // Data, EdgeClose

	// Data fields.
	Bytes   int64 // modelled message size
	From    string
	Payload any

	// Reports fields: the workload partials and final per-component
	// observation reports of one shard.
	Units    int64
	Checksum uint64
	Reports  map[string]core.ObsReport

	// Windows fields.
	Windows []monitor.WindowStats

	// CompKill / Error text.
	Name string
}

// AppendFrame encodes f, appending the length-prefixed frame to buf and
// returning the extended slice. For TypeData with a scalar payload the
// encode allocates nothing beyond buf growth — the same zero-alloc budget
// as the trace codec's event encode.
func AppendFrame(buf []byte, f *Frame) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length back-patched below
	buf = append(buf, f.Type)
	var err error
	switch f.Type {
	case TypeHello, TypeShardDone:
		buf = binary.LittleEndian.AppendUint32(buf, f.Shard)
	case TypeData:
		buf = binary.LittleEndian.AppendUint32(buf, f.Edge)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Bytes))
		buf = appendString(buf, f.From)
		buf, err = appendPayload(buf, f.Payload)
		if err != nil {
			return nil, err
		}
	case TypeEdgeClose:
		buf = binary.LittleEndian.AppendUint32(buf, f.Edge)
	case TypeWindows:
		buf = binary.LittleEndian.AppendUint32(buf, f.Shard)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Windows)))
		for i := range f.Windows {
			buf = appendWindow(buf, &f.Windows[i])
		}
	case TypeReports:
		buf = binary.LittleEndian.AppendUint32(buf, f.Shard)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Units))
		buf = binary.LittleEndian.AppendUint64(buf, f.Checksum)
		js, jerr := json.Marshal(f.Reports)
		if jerr != nil {
			return nil, fmt.Errorf("wire: encoding reports: %w", jerr)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(js)))
		buf = append(buf, js...)
	case TypeCompKill, TypeError:
		buf = appendString(buf, f.Name)
	case TypeTerminate, TypeBye:
		// type byte only
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", f.Type)
	}
	body := len(buf) - start - 4
	if body > MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame body %d exceeds %d bytes", body, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(body))
	return buf, nil
}

// DecodeFrame decodes one frame body (the bytes after the length prefix)
// into f. Truncated or trailing-garbage bodies are errors, never partial
// frames.
func DecodeFrame(body []byte, f *Frame) error {
	*f = Frame{}
	d := decoder{b: body}
	f.Type = d.u8()
	switch f.Type {
	case TypeHello, TypeShardDone:
		f.Shard = d.u32()
	case TypeData:
		f.Edge = d.u32()
		f.Bytes = int64(d.u64())
		f.From = d.str()
		f.Payload = d.payload()
	case TypeEdgeClose:
		f.Edge = d.u32()
	case TypeWindows:
		f.Shard = d.u32()
		n := d.u32()
		if d.err == nil && int(n) > len(d.b)/windowMinBytes+1 {
			return fmt.Errorf("wire: window batch of %d cannot fit %d body bytes", n, len(d.b))
		}
		if d.err == nil {
			f.Windows = make([]monitor.WindowStats, n)
			for i := range f.Windows {
				d.window(&f.Windows[i])
			}
		}
	case TypeReports:
		f.Shard = d.u32()
		f.Units = int64(d.u64())
		f.Checksum = d.u64()
		js := d.bytes()
		if d.err == nil {
			if err := json.Unmarshal(js, &f.Reports); err != nil {
				return fmt.Errorf("wire: decoding reports: %w", err)
			}
		}
	case TypeCompKill, TypeError:
		f.Name = d.str()
	case TypeTerminate, TypeBye:
	default:
		if d.err == nil {
			return fmt.Errorf("wire: unknown frame type %d", f.Type)
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes after frame type %d", len(d.b)-d.off, f.Type)
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendPayload(buf []byte, p any) ([]byte, error) {
	switch v := p.(type) {
	case nil:
		return append(buf, kindNil), nil
	case bool:
		b := byte(0)
		if v {
			b = 1
		}
		return append(buf, kindBool, b), nil
	case int:
		buf = append(buf, kindInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(int64(v))), nil
	case int64:
		buf = append(buf, kindInt64)
		return binary.LittleEndian.AppendUint64(buf, uint64(v)), nil
	case uint64:
		buf = append(buf, kindUint64)
		return binary.LittleEndian.AppendUint64(buf, v), nil
	case float64:
		buf = append(buf, kindFloat64)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)), nil
	case string:
		buf = append(buf, kindString)
		return appendString(buf, v), nil
	case []byte:
		buf = append(buf, kindBytes)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		return append(buf, v...), nil
	default:
		// Struct payloads take the gob fallback; concrete types must be
		// gob-registered by their defining package so both processes agree.
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(&payloadBox{V: p}); err != nil {
			return nil, fmt.Errorf("wire: gob payload %T: %w", p, err)
		}
		buf = append(buf, kindGob)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(gb.Len()))
		return append(buf, gb.Bytes()...), nil
	}
}

// payloadBox wraps a gob payload so interface-typed values round-trip.
type payloadBox struct{ V any }

// windowMinBytes is the smallest possible encoded WindowStats (empty
// component name), used to sanity-check batch counts before allocating.
const windowMinBytes = 4 + 9*8 + 4 + 2*(8*histBuckets+8+8)

const histBuckets = 64

func appendWindow(buf []byte, w *monitor.WindowStats) []byte {
	buf = appendString(buf, w.Component)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.StartUS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.EndUS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.CoveredUS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.Samples))
	buf = binary.LittleEndian.AppendUint64(buf, w.SendOps)
	buf = binary.LittleEndian.AppendUint64(buf, w.RecvOps)
	buf = binary.LittleEndian.AppendUint64(buf, w.DeltaSendOps)
	buf = binary.LittleEndian.AppendUint64(buf, w.DeltaRecvOps)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.SendRate))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.RecvRate))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.DepthHigh))
	buf = appendHist(buf, &w.DepthHist)
	buf = appendHist(buf, &w.LatencyHist)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.MemHigh))
	return buf
}

func appendHist(buf []byte, h *monitor.Hist) []byte {
	for _, c := range h.Counts {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	buf = binary.LittleEndian.AppendUint64(buf, h.Total)
	return binary.LittleEndian.AppendUint64(buf, uint64(h.Max))
}

// decoder is the bounds-checked cursor over a frame body. The first
// out-of-range read poisons it; every accessor thereafter returns zero.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated frame at offset %d of %d", d.off, len(d.b))
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) payload() any {
	switch kind := d.u8(); kind {
	case kindNil:
		return nil
	case kindBool:
		return d.u8() != 0
	case kindInt:
		return int(int64(d.u64()))
	case kindInt64:
		return int64(d.u64())
	case kindUint64:
		return d.u64()
	case kindFloat64:
		return math.Float64frombits(d.u64())
	case kindString:
		return d.str()
	case kindBytes:
		b := d.bytes()
		if d.err != nil {
			return nil
		}
		return append([]byte(nil), b...)
	case kindGob:
		gb := d.bytes()
		if d.err != nil {
			return nil
		}
		var box payloadBox
		if err := gob.NewDecoder(bytes.NewReader(gb)).Decode(&box); err != nil {
			d.err = fmt.Errorf("wire: gob payload: %w", err)
			return nil
		}
		return box.V
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wire: unknown payload kind %d", kind)
		}
		return nil
	}
}

func (d *decoder) window(w *monitor.WindowStats) {
	w.Component = d.str()
	w.StartUS = int64(d.u64())
	w.EndUS = int64(d.u64())
	w.CoveredUS = int64(d.u64())
	w.Samples = int(int64(d.u64()))
	w.SendOps = d.u64()
	w.RecvOps = d.u64()
	w.DeltaSendOps = d.u64()
	w.DeltaRecvOps = d.u64()
	w.SendRate = math.Float64frombits(d.u64())
	w.RecvRate = math.Float64frombits(d.u64())
	w.DepthHigh = int(int64(d.u64()))
	d.hist(&w.DepthHist)
	d.hist(&w.LatencyHist)
	w.MemHigh = int64(d.u64())
}

func (d *decoder) hist(h *monitor.Hist) {
	for i := range h.Counts {
		h.Counts[i] = d.u64()
	}
	h.Total = d.u64()
	h.Max = int64(d.u64())
}
