package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"embera/internal/core"
)

func sampleEvents(n int) []core.Event {
	evs := make([]core.Event, n)
	kinds := []core.EventKind{core.EvStart, core.EvSend, core.EvReceive, core.EvCompute, core.EvStop}
	for i := range evs {
		evs[i] = core.Event{
			TimeUS:    int64(i * 10),
			Kind:      kinds[i%len(kinds)],
			Component: []string{"Fetch", "IDCT_1", "Reorder"}[i%3],
			Interface: []string{"", "fetchIdct1", "idctReorder"}[i%3],
			Bytes:     i * 100,
			DurUS:     int64(i),
		}
	}
	return evs
}

func TestRecorderKeepsOrder(t *testing.T) {
	r := NewRecorder(100)
	for _, e := range sampleEvents(50) {
		r.Emit(e)
	}
	got := r.Events()
	if len(got) != 50 || r.Len() != 50 {
		t.Fatalf("len = %d", len(got))
	}
	for i, e := range got {
		if e.TimeUS != int64(i*10) {
			t.Fatalf("order broken at %d", i)
		}
	}
	total, dropped := r.Stats()
	if total != 50 || dropped != 0 {
		t.Errorf("stats = %d/%d", total, dropped)
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(10)
	for _, e := range sampleEvents(25) {
		r.Emit(e)
	}
	got := r.Events()
	if len(got) != 10 {
		t.Fatalf("retained = %d, want 10", len(got))
	}
	// Oldest retained is event 15.
	if got[0].TimeUS != 150 || got[9].TimeUS != 240 {
		t.Errorf("window = [%d, %d], want [150, 240]", got[0].TimeUS, got[9].TimeUS)
	}
	total, dropped := r.Stats()
	if total != 25 || dropped != 15 {
		t.Errorf("stats = %d/%d, want 25/15", total, dropped)
	}
}

func TestRecorderDisable(t *testing.T) {
	r := NewRecorder(10)
	r.Emit(core.Event{TimeUS: 1})
	r.SetEnabled(false)
	r.Emit(core.Event{TimeUS: 2})
	r.SetEnabled(true)
	r.Emit(core.Event{TimeUS: 3})
	got := r.Events()
	if len(got) != 2 || got[1].TimeUS != 3 {
		t.Errorf("events = %v", got)
	}
}

func TestRecorderBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewRecorder(0)
}

func TestCodecRoundTrip(t *testing.T) {
	evs := sampleEvents(123)
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("len = %d, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], evs[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("events = %d", len(got))
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header, truncated body.
	var buf bytes.Buffer
	if err := Write(&buf, sampleEvents(5)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(times []int64, sizes []uint16) bool {
		n := len(times)
		if len(sizes) < n {
			n = len(sizes)
		}
		if n > 64 {
			n = 64
		}
		evs := make([]core.Event, n)
		for i := 0; i < n; i++ {
			evs[i] = core.Event{
				TimeUS: times[i], Kind: core.EvSend,
				Component: "c", Interface: "i",
				Bytes: int(sizes[i]), DurUS: times[i] / 2,
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, evs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range evs {
			if got[i] != evs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	evs := []core.Event{
		{TimeUS: 0, Kind: core.EvStart, Component: "A"},
		{TimeUS: 10, Kind: core.EvSend, Component: "A", Interface: "out", Bytes: 100, DurUS: 5},
		{TimeUS: 20, Kind: core.EvSend, Component: "A", Interface: "out", Bytes: 200, DurUS: 7},
		{TimeUS: 15, Kind: core.EvReceive, Component: "B", Interface: "in", Bytes: 100, DurUS: 3},
		{TimeUS: 30, Kind: core.EvCompute, Component: "B", DurUS: 11},
		{TimeUS: 40, Kind: core.EvStop, Component: "A"},
	}
	sums := Summarize(evs)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	a, b := sums[0], sums[1]
	if a.Component != "A" || b.Component != "B" {
		t.Fatal("sort order wrong")
	}
	if a.Sends != 2 || a.SendBytes != 300 || a.SendUS != 12 {
		t.Errorf("A = %+v", a)
	}
	if a.FirstUS != 0 || a.LastUS != 40 {
		t.Errorf("A span = [%d,%d]", a.FirstUS, a.LastUS)
	}
	if b.Receives != 1 || b.Computes != 1 || b.ComputeUS != 11 {
		t.Errorf("B = %+v", b)
	}
	table := FormatSummaries(sums)
	if !strings.Contains(table, "A") || !strings.Contains(table, "component") {
		t.Error("format missing fields")
	}
	var dump bytes.Buffer
	Dump(&dump, evs)
	if !strings.Contains(dump.String(), "send") {
		t.Error("dump missing kinds")
	}
}
