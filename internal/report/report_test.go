package report_test

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"embera/internal/core"
	"embera/internal/perfstat"
	"embera/internal/report"
)

func sampleReports() map[string]core.ObsReport {
	return map[string]core.ObsReport{
		"Fetch": {
			Component: "Fetch",
			Level:     core.LevelAll,
			OS:        &core.OSReport{ExecTimeUS: 4084, MemBytes: 8392 * 1024},
			Middleware: &core.MWReport{
				Send: map[string]core.IfaceStats{
					"fetchIdct1": {Ops: 3468, Bytes: 3468 * 4352, TotalUS: 46000, MaxUS: 20},
				},
				Recv: map[string]core.IfaceStats{},
			},
			App: &core.AppReport{SendOps: 10404, State: "done"},
		},
		"Reorder": {
			Component: "Reorder",
			Level:     core.LevelAll,
			OS:        &core.OSReport{ExecTimeUS: 4086, MemBytes: 13308 * 1024, CacheHits: 10, CacheMisses: 3},
			Middleware: &core.MWReport{
				Send: map[string]core.IfaceStats{},
				Recv: map[string]core.IfaceStats{
					"idctReorder": {Ops: 10404, Bytes: 10404 * 2304, TotalUS: 118000, MaxUS: 31},
				},
			},
			App: &core.AppReport{RecvOps: 10404, State: "done"},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := sampleReports()
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := report.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip lost reports: %d", len(out))
	}
	f := out["Fetch"]
	if f.OS.ExecTimeUS != 4084 || f.App.SendOps != 10404 {
		t.Errorf("Fetch = %+v", f)
	}
	if f.Middleware.Send["fetchIdct1"].Ops != 3468 {
		t.Error("middleware stats lost")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := report.ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := report.ReadJSON(strings.NewReader(`[{"Component": ""}]`)); err == nil {
		t.Error("nameless entry accepted")
	}
}

func TestCSVSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, sampleReports()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 components
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted: Fetch before Reorder.
	if rows[1][0] != "Fetch" || rows[2][0] != "Reorder" {
		t.Errorf("order = %v, %v", rows[1][0], rows[2][0])
	}
	if rows[1][2] != "4084" || rows[1][5] != "10404" {
		t.Errorf("Fetch row = %v", rows[1])
	}
	if rows[2][10] != "3" { // cache misses
		t.Errorf("Reorder row = %v", rows[2])
	}
}

func TestIfaceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := report.WriteIfaceCSV(&buf, sampleReports()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + fetch send + reorder recv
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[1][1] != "send" || rows[1][2] != "fetchIdct1" {
		t.Errorf("row = %v", rows[1])
	}
	if rows[2][1] != "recv" || rows[2][3] != "10404" {
		t.Errorf("row = %v", rows[2])
	}
}

func TestSortedStable(t *testing.T) {
	in := sampleReports()
	a := report.Sorted(in)
	b := report.Sorted(in)
	for i := range a {
		if a[i].Component != b[i].Component {
			t.Fatal("sort not stable")
		}
	}
}

// TestWriteBenchCSV locks the perfstat-record CSV export: sorted rows, one
// per experiment, with the overhead column preserved.
func TestWriteBenchCSV(t *testing.T) {
	on := perfstat.NewEntry(2_000_000, 800, 4096, 40)
	on.OverheadPct = 3.5
	rec := perfstat.Record{
		"T1":                         perfstat.NewEntry(1_000_000, 500, 2048, 0),
		"OV/smp×pipeline/monitor-on": on,
	}
	var buf bytes.Buffer
	if err := report.WriteBenchCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[1][0] != "OV/smp×pipeline/monitor-on" || rows[2][0] != "T1" {
		t.Fatalf("rows not sorted by experiment: %v / %v", rows[1][0], rows[2][0])
	}
	if rows[1][8] != "3.5" {
		t.Fatalf("overhead_pct = %q, want 3.5", rows[1][8])
	}
	if rows[2][5] != "0" {
		t.Fatalf("unitless ns_per_op = %q, want 0", rows[2][5])
	}
}
