package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"embera/internal/core"
	"embera/internal/monitor"
	"embera/internal/platform"
	"embera/internal/sim"
)

// ErrNotRunning is returned by control operations that need a live
// generation (reconnect, stop-drain) when the assembly is idle — stopped,
// between generations, or already torn down.
var ErrNotRunning = fmt.Errorf("exp: assembly is not running")

// ServedOptions configures RunServed beyond the per-run Options.
type ServedOptions struct {
	Options

	// Pace is the wall-clock pause between generations (default 50 ms): it
	// keeps a fast simulated workload from busy-looping the host while the
	// assembly idles between runs.
	Pace time.Duration
	// CtlPollUS is the control driver's poll period in platform
	// microseconds (default 1000): the latency bound on applying queued
	// control operations (reconnect, stop) inside a running generation.
	CtlPollUS int64
	// GenerationHorizonUS bounds one generation in platform time on
	// wall-clock platforms (default 5 minutes). Simulated generations keep
	// the batch harness's virtual horizon.
	GenerationHorizonUS int64
	// MaxConsecutiveFailures stops the assembly after this many failed
	// generations in a row (default 3), so a workload broken by a control
	// change does not relaunch forever.
	MaxConsecutiveFailures int
}

// ServedStats is a point-in-time snapshot of a served assembly, merging
// counters accumulated over completed generations with the live
// generation's monitor.
type ServedStats struct {
	// Generations counts generation launches (including the live one);
	// CompletedChecks counts generations that finished and passed the
	// workload self-check; Units accumulates work units across generations.
	Generations     uint64
	CompletedChecks uint64
	Units           uint64

	// Samples/RingDropped/SinkErrors aggregate the monitor pipeline's
	// accounting across all generations, live one included.
	Samples     uint64
	RingDropped uint64
	SinkErrors  uint64

	Running bool // a generation is executing right now
	Stopped bool // stop requested; no further generations until Start
	Paused  bool // sampling suspended

	// Levels and WindowUS are the live sampling configuration (the desired
	// state every new generation starts from, updated by SetPeriod /
	// SetWindowUS).
	Levels   []monitor.LevelPeriod
	WindowUS int64
	// EffectiveLevels is the period each sampler is actually running at:
	// equal to Levels unless the adaptive overhead controller has backed a
	// sampler off its configured period under load. Between generations it
	// holds the last live generation's reading, so the gauge does not
	// flap to base at every relaunch.
	EffectiveLevels []monitor.LevelPeriod
	// OverheadBudgetPct is the configured adaptive sampling budget
	// (percent of host time per sampler; 0 = controller off).
	OverheadBudgetPct float64

	// LastMakespanUS is the platform time at which the most recent
	// completed generation finished.
	LastMakespanUS int64
	// LastErr is the most recent generation failure ("" when healthy);
	// ConsecutiveFailures counts the current failure streak.
	LastErr             string
	ConsecutiveFailures int
}

// CapturedGeneration is the answer to CaptureNext: the generation that
// carried the caller's event sink, delivered after it finished. App is the
// generation's (now quiesced) assembly, for manifest extraction; Err is
// the generation's failure, if any.
type CapturedGeneration struct {
	App *core.App
	Err error
}

// captureReq is one pending CaptureNext registration.
type captureReq struct {
	sink core.EventSink
	ch   chan CapturedGeneration
}

// controlOp is one queued control operation, applied by the control driver
// from driver-flow context — the only context core.App.Reconnect and
// termination are safe in on every platform (kernel context on the
// simulators, a plain goroutine on native).
type controlOp struct {
	apply func(a *core.App, f core.Flow) error
	done  chan error // buffered(1); every enqueued op is answered exactly once
}

// ServedRun is a long-running assembly: RunServed relaunches the workload
// in generations — each generation a fresh machine, application and
// monitor, all fed into the same persistent sinks — so the window stream
// never ends while the paper's control functions (stop/start, reconnect,
// sampling-period and window changes, pause/resume) apply live to the
// generation in flight. This is the exp-layer engine behind embera-serve.
type ServedRun struct {
	p    platform.Platform
	w    platform.Workload
	base Options

	pace      time.Duration
	ctlPollUS int64
	horizonUS int64
	maxFails  int

	quit     chan struct{} // Close(): permanent shutdown
	quitOnce sync.Once
	done     chan struct{} // generation loop exited

	mu       sync.Mutex
	levels   []monitor.LevelPeriod // desired sampler config (live + next generations)
	lastEff  []monitor.LevelPeriod // last observed effective periods (survives generation ends)
	windowUS int64
	paused   bool
	stopReq  bool
	wake     chan struct{} // Start() signal, buffered(1)
	ops      []*controlOp
	captures []*captureReq
	running  bool
	machine  platform.Machine
	app      *core.App
	mon      *monitor.Monitor
	lastErr  error
	fails    int

	gens    atomic.Uint64
	checks  atomic.Uint64
	units   atomic.Uint64
	samples atomic.Uint64
	dropped atomic.Uint64
	sinkErr atomic.Uint64
	lastEnd atomic.Int64
}

// RunServed launches workload w on platform p as a long-running served
// assembly and returns immediately; the assembly keeps re-running the
// workload until Stop or Close. Unlike Run it never tears the observation
// stream down: opts.Monitor.Sinks persist across generations, which is how
// a streaming front end keeps one subscriber-facing window stream over an
// arbitrarily long-lived assembly.
func RunServed(p platform.Platform, w platform.Workload, opts ServedOptions) (*ServedRun, error) {
	if p == nil || w == nil {
		return nil, fmt.Errorf("exp: RunServed needs a platform and a workload")
	}
	if err := opts.Options.validate(); err != nil {
		return nil, err
	}
	if opts.Pace == 0 {
		opts.Pace = 50 * time.Millisecond
	}
	if opts.Pace < 0 {
		return nil, fmt.Errorf("exp: negative pace %v", opts.Pace)
	}
	if opts.CtlPollUS == 0 {
		opts.CtlPollUS = 1000
	}
	if opts.CtlPollUS < 0 {
		return nil, fmt.Errorf("exp: negative control poll period %d µs", opts.CtlPollUS)
	}
	if opts.GenerationHorizonUS == 0 {
		opts.GenerationHorizonUS = wallHorizonUS
	}
	if opts.MaxConsecutiveFailures == 0 {
		opts.MaxConsecutiveFailures = 3
	}
	if opts.Monitor == nil {
		opts.Monitor = &monitor.Config{}
	}
	sr := &ServedRun{
		p: p, w: w, base: opts.Options,
		pace:      opts.Pace,
		ctlPollUS: opts.CtlPollUS,
		horizonUS: opts.GenerationHorizonUS,
		maxFails:  opts.MaxConsecutiveFailures,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		wake:      make(chan struct{}, 1),
	}
	// Desired sampling state starts from the configured monitor, with the
	// monitor package's own defaults where unset.
	sr.levels = append([]monitor.LevelPeriod(nil), opts.Monitor.Levels...)
	if len(sr.levels) == 0 {
		sr.levels = []monitor.LevelPeriod{{Level: core.LevelApplication, PeriodUS: 1000}}
	}
	sr.windowUS = opts.Monitor.WindowUS
	if sr.windowUS == 0 {
		sr.windowUS = 10_000
	}
	go sr.loop()
	return sr, nil
}

// loop is the generation supervisor: run a generation, pace, repeat —
// parking while stopped, exiting on Close.
func (sr *ServedRun) loop() {
	defer func() {
		// Answer capture requests that never got a generation, so waiting
		// callers are released on shutdown.
		sr.mu.Lock()
		captures := sr.captures
		sr.captures = nil
		sr.mu.Unlock()
		for _, c := range captures {
			c.ch <- CapturedGeneration{Err: ErrNotRunning}
		}
		close(sr.done)
	}()
	for {
		select {
		case <-sr.quit:
			return
		default:
		}
		if sr.stopRequested() {
			select {
			case <-sr.wake:
				continue
			case <-sr.quit:
				return
			}
		}
		err := sr.runGeneration()
		sr.mu.Lock()
		if err != nil && !sr.stopReq {
			sr.lastErr = err
			sr.fails++
			if sr.fails >= sr.maxFails {
				// A persistently failing workload parks the assembly
				// instead of relaunching forever; Start() retries.
				sr.stopReq = true
			}
		} else if err == nil {
			sr.lastErr = nil
			sr.fails = 0
		}
		sr.mu.Unlock()
		select {
		case <-time.After(sr.pace):
		case <-sr.quit:
			return
		}
	}
}

// runGeneration executes one full workload run under observation: the
// served counterpart of Run, without the final observer query (the window
// stream is the product) and tolerant of an interrupt mid-run.
func (sr *ServedRun) runGeneration() (err error) {
	sr.gens.Add(1)

	sr.mu.Lock()
	mcfg := *sr.base.Monitor
	mcfg.Levels = append([]monitor.LevelPeriod(nil), sr.levels...)
	mcfg.WindowUS = sr.windowUS
	paused := sr.paused
	// One pending capture request adopts this generation: its sink replaces
	// the base event sink for the whole run, and it is answered — assembly
	// plus outcome — when the generation ends, however it ends.
	var capture *captureReq
	if len(sr.captures) > 0 {
		capture = sr.captures[0]
		sr.captures = sr.captures[1:]
	}
	sr.mu.Unlock()

	m, a := sr.p.New(sr.w.Name())
	if capture != nil {
		defer func() { capture.ch <- CapturedGeneration{App: a, Err: err} }()
	}
	inst, err := sr.w.Build(a, sr.p, sr.base.Options)
	if err != nil {
		return err
	}
	// Sharding machines (cluster) take the distribution seam before the
	// monitor exists, exactly as in exp.Run.
	if d, ok := m.(distributor); ok {
		if err := d.Distribute(sr.w.Name(), sr.base.Options, inst); err != nil {
			return err
		}
	}
	switch {
	case capture != nil:
		a.SetEventSink(capture.sink)
	case sr.base.EventSink != nil:
		a.SetEventSink(sr.base.EventSink)
	}
	mon, err := monitor.New(a, mcfg)
	if err != nil {
		return err
	}
	if err := mon.Start(); err != nil {
		return err
	}
	if paused {
		mon.Pause()
	}
	if sr.base.OnMonitor != nil {
		sr.base.OnMonitor(mon)
	}
	if mt, ok := m.(monitorTaker); ok {
		mt.TakeMonitor(mon, &mcfg)
	}

	sr.mu.Lock()
	sr.machine, sr.app, sr.mon = m, a, mon
	sr.running = true
	sr.mu.Unlock()

	defer func() {
		// Unpublish the generation, fold its pipeline accounting into the
		// long-run totals and answer any control op that raced the exit.
		sr.mu.Lock()
		sr.lastEff = mon.EffectiveLevels()
		sr.machine, sr.app, sr.mon = nil, nil, nil
		sr.running = false
		ops := sr.ops
		sr.ops = nil
		sr.mu.Unlock()
		for _, op := range ops {
			op.done <- ErrNotRunning
		}
		sr.samples.Add(mon.Samples())
		sr.dropped.Add(mon.Dropped())
		sr.sinkErr.Add(mon.SinkErrors())
	}()

	obs, err := a.AttachObserver()
	if err != nil {
		mon.Stop()
		return err
	}
	if sr.base.Customize != nil {
		sr.base.Customize(a, obs)
	}
	a.SpawnDriver("serve/control", func(f core.Flow) { sr.controlLoop(a, f) })
	if err := a.Start(); err != nil {
		mon.Stop()
		return err
	}
	horizonUS := int64(horizon) / int64(sim.Microsecond)
	if !sr.p.Deterministic() {
		horizonUS = sr.horizonUS
	}
	if err := m.Run(horizonUS); err != nil {
		mon.Stop()
		return err
	}
	if !a.Done() {
		mon.Stop()
		return fmt.Errorf("exp: generation did not finish before the horizon")
	}
	sr.lastEnd.Store(m.NowUS())
	sr.units.Add(uint64(inst.Units()))
	if sr.interrupted() {
		// A stopped generation is cut short by design: its units count,
		// its self-check is meaningless.
		return nil
	}
	if cerr := inst.Check(); cerr != nil {
		return fmt.Errorf("exp: workload self-check: %w", cerr)
	}
	sr.checks.Add(1)
	return nil
}

// controlLoop is the per-generation control driver: it polls the op queue
// on platform time and applies queued operations from driver-flow context,
// which is safe on every binding (it runs inside the kernel on the
// simulators). The final drain answers ops enqueued in the same poll the
// application finished.
func (sr *ServedRun) controlLoop(a *core.App, f core.Flow) {
	for !a.Done() {
		f.SleepUS(sr.ctlPollUS)
		sr.applyOps(a, f)
	}
	sr.applyOps(a, f)
}

// applyOps drains and answers the pending control-op queue. Operations
// receive the driver flow so ones that block on mailboxes (Migrate's
// backlog drain) run in a context every binding allows that in.
func (sr *ServedRun) applyOps(a *core.App, f core.Flow) {
	sr.mu.Lock()
	ops := sr.ops
	sr.ops = nil
	sr.mu.Unlock()
	for _, op := range ops {
		op.done <- op.apply(a, f)
	}
}

// enqueue hands an operation to the live generation's control driver and
// waits for the answer. Every accepted op is answered: the driver drains
// on completion and runGeneration's teardown answers stragglers.
func (sr *ServedRun) enqueue(apply func(a *core.App, f core.Flow) error) error {
	op := &controlOp{apply: apply, done: make(chan error, 1)}
	sr.mu.Lock()
	if !sr.running {
		sr.mu.Unlock()
		return ErrNotRunning
	}
	sr.ops = append(sr.ops, op)
	sr.mu.Unlock()
	return <-op.done
}

func (sr *ServedRun) stopRequested() bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.stopReq
}

// interrupted reports whether the current generation was asked to die
// (assembly stop or full shutdown).
func (sr *ServedRun) interrupted() bool {
	select {
	case <-sr.quit:
		return true
	default:
	}
	return sr.stopRequested()
}

// terminateAll is the stop operation's body: terminate every component so
// the application drains and the generation's machine run returns.
func terminateAll(a *core.App, _ core.Flow) error {
	for _, c := range a.Components() {
		if err := a.Terminate(c); err != nil {
			return err
		}
	}
	return nil
}

// CaptureNext arms a one-shot trace capture: sink becomes the event sink
// of the next generation to launch (displacing the base sink for that
// generation only), and the returned channel delivers the generation's
// quiesced assembly and outcome once it finishes — everything a bundle
// capture needs. The channel is buffered; an assembly shut down before a
// generation adopts the request answers with ErrNotRunning. Callers
// should select against their own timeout: a stopped assembly holds the
// request until the next Start.
func (sr *ServedRun) CaptureNext(sink core.EventSink) <-chan CapturedGeneration {
	req := &captureReq{sink: sink, ch: make(chan CapturedGeneration, 1)}
	sr.mu.Lock()
	sr.captures = append(sr.captures, req)
	sr.mu.Unlock()
	return req.ch
}

// Stop requests the assembly to stop: the in-flight generation is
// terminated — through the platform's Interruptible lifecycle hook when
// the machine has one, otherwise via a queued termination op applied from
// driver context — and no further generations launch until Start. Stop
// returns without waiting for the drain; Stats().Running flips once the
// generation is gone.
func (sr *ServedRun) Stop() {
	sr.mu.Lock()
	sr.stopReq = true
	m := sr.machine
	running := sr.running
	if running {
		// The queued op covers machines without an Interrupt hook; done is
		// buffered and deliberately unread — Stop is asynchronous.
		sr.ops = append(sr.ops, &controlOp{apply: terminateAll, done: make(chan error, 1)})
	}
	sr.mu.Unlock()
	if running && m != nil {
		platform.Interrupt(m)
	}
}

// Start clears a stop (including the automatic stop after repeated
// generation failures) and relaunches the generation loop.
func (sr *ServedRun) Start() {
	sr.mu.Lock()
	sr.stopReq = false
	sr.fails = 0
	sr.mu.Unlock()
	select {
	case sr.wake <- struct{}{}:
	default:
	}
}

// Close shuts the assembly down for good: stop the live generation, exit
// the loop, and wait for it. Safe to call more than once.
func (sr *ServedRun) Close() {
	sr.quitOnce.Do(func() { close(sr.quit) })
	sr.Stop()
	<-sr.done
}

// SetPeriod retunes the sampling period of every sampler at the given
// level — live on the in-flight generation, and persistently for every
// later one.
func (sr *ServedRun) SetPeriod(level core.ObsLevel, periodUS int64) error {
	if periodUS <= 0 {
		return fmt.Errorf("exp: non-positive period %d µs", periodUS)
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	found := false
	for i := range sr.levels {
		if sr.levels[i].Level == level {
			sr.levels[i].PeriodUS = periodUS
			found = true
		}
	}
	if !found {
		return fmt.Errorf("exp: no sampler at level %s", level)
	}
	if sr.mon != nil {
		return sr.mon.SetPeriod(level, periodUS)
	}
	return nil
}

// SetWindowUS changes the aggregation window, live and persistently.
func (sr *ServedRun) SetWindowUS(windowUS int64) error {
	if windowUS <= 0 {
		return fmt.Errorf("exp: non-positive window %d µs", windowUS)
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.windowUS = windowUS
	if sr.mon != nil {
		return sr.mon.SetWindowUS(windowUS)
	}
	return nil
}

// Pause suspends sampling (the workload keeps running); Resume restarts
// it. Both apply live and persist across generations.
func (sr *ServedRun) Pause() { sr.setPaused(true) }

// Resume re-enables sampling after a Pause.
func (sr *ServedRun) Resume() { sr.setPaused(false) }

func (sr *ServedRun) setPaused(p bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.paused = p
	if sr.mon == nil {
		return
	}
	if p {
		sr.mon.Pause()
	} else {
		sr.mon.Resume()
	}
}

// Reconnect rewires a running component's required interface to a new
// provider, applied from the control driver's flow — the paper's dynamic
// reconfiguration as a live API. It fails with ErrNotRunning between
// generations (each generation is a fresh assembly; there is nothing to
// rewire).
func (sr *ServedRun) Reconnect(from, req, to, prov string) error {
	return sr.enqueue(func(a *core.App, _ core.Flow) error {
		fc, ok := a.Component(from)
		if !ok {
			return fmt.Errorf("exp: no component %q", from)
		}
		tc, ok := a.Component(to)
		if !ok {
			return fmt.Errorf("exp: no component %q", to)
		}
		return a.Reconnect(fc, req, tc, prov)
	})
}

// Migrate rewires like Reconnect and additionally moves the displaced
// inbox's backlog to the new provider when the rewire closed it (the
// producer was its last): quiesce-by-close, drain through the transport
// seam, resume on the new target. The drain runs on the control driver's
// flow, the one context where blocking mailbox operations are legal on
// every binding.
func (sr *ServedRun) Migrate(from, req, to, prov string) error {
	return sr.enqueue(func(a *core.App, f core.Flow) error {
		fc, ok := a.Component(from)
		if !ok {
			return fmt.Errorf("exp: no component %q", from)
		}
		tc, ok := a.Component(to)
		if !ok {
			return fmt.Errorf("exp: no component %q", to)
		}
		return a.Migrate(f, fc, req, tc, prov)
	})
}

// Terminate force-stops one named component of the live generation (the
// paper's termination control function), leaving the rest of the assembly
// to drain naturally.
func (sr *ServedRun) Terminate(name string) error {
	return sr.enqueue(func(a *core.App, _ core.Flow) error {
		c, ok := a.Component(name)
		if !ok {
			return fmt.Errorf("exp: no component %q", name)
		}
		return a.Terminate(c)
	})
}

// Platform and Workload name the assembly's fixed coordinates.
func (sr *ServedRun) Platform() platform.Platform { return sr.p }

// Workload returns the served workload.
func (sr *ServedRun) Workload() platform.Workload { return sr.w }

// Generations reports how many generations have launched so far.
func (sr *ServedRun) Generations() uint64 { return sr.gens.Load() }

// Stats snapshots the assembly, merging accumulated generation totals with
// the live monitor's counters.
func (sr *ServedRun) Stats() ServedStats {
	sr.mu.Lock()
	st := ServedStats{
		Generations:         sr.gens.Load(),
		CompletedChecks:     sr.checks.Load(),
		Units:               sr.units.Load(),
		Samples:             sr.samples.Load(),
		RingDropped:         sr.dropped.Load(),
		SinkErrors:          sr.sinkErr.Load(),
		Running:             sr.running,
		Stopped:             sr.stopReq,
		Paused:              sr.paused,
		Levels:              append([]monitor.LevelPeriod(nil), sr.levels...),
		WindowUS:            sr.windowUS,
		LastMakespanUS:      sr.lastEnd.Load(),
		ConsecutiveFailures: sr.fails,
	}
	if sr.base.Monitor != nil {
		st.OverheadBudgetPct = sr.base.Monitor.OverheadBudgetPct
	}
	if sr.lastErr != nil {
		st.LastErr = sr.lastErr.Error()
	}
	if sr.mon != nil {
		st.Samples += sr.mon.Samples()
		st.RingDropped += sr.mon.Dropped()
		st.SinkErrors += sr.mon.SinkErrors()
		sr.lastEff = sr.mon.EffectiveLevels()
	}
	switch {
	case sr.lastEff != nil:
		st.EffectiveLevels = append([]monitor.LevelPeriod(nil), sr.lastEff...)
	default:
		// No generation has sampled yet: effective = configured.
		st.EffectiveLevels = append([]monitor.LevelPeriod(nil), sr.levels...)
	}
	sr.mu.Unlock()
	return st
}
